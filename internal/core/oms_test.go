package core

import (
	"math"
	"sync"
	"testing"

	"oms/internal/gen"
	"oms/internal/graph"
	"oms/internal/hierarchy"
	"oms/internal/metrics"
	"oms/internal/onepass"
	"oms/internal/stream"
)

func statsOf(t *testing.T, g *graph.Graph) stream.Stats {
	t.Helper()
	st, err := stream.NewMemory(g).Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func runOMS(t *testing.T, g *graph.Graph, tree *hierarchy.Tree, cfg Config) []int32 {
	t.Helper()
	o, err := New(tree, statsOf(t, g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := o.Run(stream.NewMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

func TestConfigValidation(t *testing.T) {
	st := stream.Stats{N: 10, M: 20, TotalNodeWeight: 10, TotalEdgeWeight: 20}
	tree := hierarchy.FromSpec(hierarchy.MustSpec("2:2"))
	if _, err := New(tree, st, Config{Epsilon: -0.1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := New(tree, st, Config{Epsilon: 0.03, HashLayers: 5}); err == nil {
		t.Fatal("HashLayers beyond depth accepted")
	}
	if _, err := NewGP(0, 4, st, Config{Epsilon: 0.03}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewGP(4, 1, st, Config{Epsilon: 0.03}); err == nil {
		t.Fatal("base=1 accepted")
	}
}

func TestAdaptedAlphaInvariant(t *testing.T) {
	// DESIGN.md invariant: alpha(W) * sqrt(t(W)) == alpha_root for every
	// tree block, which subsumes the homogeneous per-layer formula.
	g := gen.ErdosRenyi(1000, 5000, 1)
	st := statsOf(t, g)
	tree := hierarchy.FromSpec(hierarchy.MustSpec("4:4:4"))
	o, err := New(tree, st, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	root := onepass.Alpha(tree.K, st.TotalEdgeWeight, st.N)
	for v := int32(0); v < tree.NumNodes(); v++ {
		got := o.AlphaOf(v) * math.Sqrt(float64(tree.LeafCount(v)))
		if math.Abs(got-root) > 1e-9*root {
			t.Fatalf("block %d: alpha*sqrt(t)=%v want %v", v, got, root)
		}
	}
}

func TestVanillaAlphaUniform(t *testing.T) {
	g := gen.ErdosRenyi(500, 2000, 2)
	st := statsOf(t, g)
	tree := hierarchy.FromSpec(hierarchy.MustSpec("4:4"))
	o, err := New(tree, st, Config{Epsilon: 0.03, VanillaAlpha: true})
	if err != nil {
		t.Fatal(err)
	}
	a0 := o.AlphaOf(0)
	for v := int32(1); v < tree.NumNodes(); v++ {
		if o.AlphaOf(v) != a0 {
			t.Fatal("vanilla alpha should be uniform across blocks")
		}
	}
}

func TestBalanceAcrossConfigs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rgg":  gen.RandomGeometric(3000, 0.55, 3),
		"rmat": gen.RMAT(2048, 10000, gen.SocialRMAT, 4),
	}
	trees := map[string]*hierarchy.Tree{
		"spec4:16:2": hierarchy.FromSpec(hierarchy.MustSpec("4:16:2")),
		"art-k100":   hierarchy.BuildArtificial(100, 4),
		"art-k37b3":  hierarchy.BuildArtificial(37, 3),
	}
	for gname, g := range graphs {
		for tname, tree := range trees {
			for _, scorer := range []Scorer{ScorerFennel, ScorerLDG, ScorerHashing} {
				cfg := Config{Epsilon: 0.03, Scorer: scorer, Seed: 7}
				parts := runOMS(t, g, tree, cfg)
				if err := metrics.CheckBalanced(g, parts, tree.K, cfg.Epsilon); err != nil {
					t.Errorf("%s/%s/%v: %v", gname, tname, scorer, err)
				}
			}
		}
	}
}

func TestTreeLoadConsistency(t *testing.T) {
	// Sequential invariant: every internal block's load equals the sum of
	// its children's loads; the root carries no load (never scored) but
	// depth-1 blocks sum to the total node weight.
	g := gen.Delaunay(2000, 5)
	tree := hierarchy.FromSpec(hierarchy.MustSpec("2:3:4"))
	st := statsOf(t, g)
	o, err := New(tree, st, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(stream.NewMemory(g)); err != nil {
		t.Fatal(err)
	}
	loads := o.TreeLoads()
	var rootSum int64
	first, count := tree.Children(tree.Root)
	for c := first; c < first+count; c++ {
		rootSum += loads[c]
	}
	if rootSum != st.TotalNodeWeight {
		t.Fatalf("depth-1 loads sum to %d want %d", rootSum, st.TotalNodeWeight)
	}
	for v := int32(0); v < tree.NumNodes(); v++ {
		if tree.IsLeaf(v) || v == tree.Root {
			continue
		}
		var sum int64
		cf, cc := tree.Children(v)
		for c := cf; c < cf+cc; c++ {
			sum += loads[c]
		}
		if sum != loads[v] {
			t.Fatalf("block %d: children sum %d != load %d", v, sum, loads[v])
		}
	}
}

func TestLeafLoadsMatchPartition(t *testing.T) {
	g := gen.ErdosRenyi(1500, 6000, 9)
	tree := hierarchy.BuildArtificial(10, 4)
	st := statsOf(t, g)
	o, err := New(tree, st, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := o.Run(stream.NewMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	loads := o.TreeLoads()
	want := metrics.BlockLoads(g, parts, tree.K)
	for leaf := int32(0); leaf < tree.K; leaf++ {
		if loads[tree.LeafNode[leaf]] != want[leaf] {
			t.Fatalf("leaf %d: tree load %d, partition load %d",
				leaf, loads[tree.LeafNode[leaf]], want[leaf])
		}
	}
}

// multiPassReference simulates the paper's l-successive-passes offline
// recursive multi-section (§3.1): pass d refines every node one tree
// level, seeing exactly the assignments available in that model. OMS must
// reproduce it exactly (the paper's Figure-1 equivalence argument).
func multiPassReference(g *graph.Graph, tree *hierarchy.Tree, st stream.Stats, cfg Config) []int32 {
	n := g.NumNodes()
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	lmax := onepass.Lmax(st.TotalNodeWeight, tree.K, cfg.Epsilon)
	alphaRoot := onepass.Alpha(tree.K, st.TotalEdgeWeight, st.N)
	caps := make([]int64, tree.NumNodes())
	alphas := make([]float64, tree.NumNodes())
	for v := int32(0); v < tree.NumNodes(); v++ {
		tcount := tree.LeafCount(v)
		caps[v] = int64(tcount) * lmax
		alphas[v] = alphaRoot / math.Sqrt(float64(tcount))
	}
	cur := make([]int32, n) // tree node after the completed passes
	for u := range cur {
		cur[u] = tree.Root
	}
	loads := make([]int64, tree.NumNodes())
	done := make([]bool, n)
	for depth := int32(0); depth < tree.MaxDepth; depth++ {
		for u := range done {
			done[u] = false
		}
		for u := int32(0); u < n; u++ {
			v := cur[u]
			if tree.IsLeaf(v) {
				done[u] = true
				continue
			}
			first, count := tree.Children(v)
			gains := make([]float64, count)
			adj := g.Neighbors(u)
			ew := g.EdgeWeights(u)
			for i, nb := range adj {
				if !done[nb] {
					continue
				}
				p := cur[nb]
				if tree.KL[p] < tree.KL[v] || tree.KR[p] > tree.KR[v] {
					continue
				}
				c := tree.ChildContaining(v, tree.KL[p])
				w := 1.0
				if ew != nil {
					w = float64(ew[i])
				}
				gains[c-first] += w
			}
			w := int64(g.NodeWeight(u))
			best := int32(-1)
			bestScore := 0.0
			var bestLoad int64
			for i := int32(0); i < count; i++ {
				c := first + i
				var score float64
				var ok bool
				if cfg.Scorer == ScorerLDG {
					score, ok = onepass.LDGScore(gains[i], loads[c], w, caps[c])
				} else {
					score, ok = onepass.FennelScore(gains[i], loads[c], w, caps[c], alphas[c], gamma)
				}
				if !ok {
					continue
				}
				if best < 0 || score > bestScore || (score == bestScore && loads[c] < bestLoad) {
					best, bestScore, bestLoad = c, score, loads[c]
				}
			}
			if best < 0 {
				bestRatio := math.Inf(1)
				for i := int32(0); i < count; i++ {
					c := first + i
					if r := float64(loads[c]) / float64(caps[c]); r < bestRatio {
						best, bestRatio = c, r
					}
				}
			}
			loads[best] += w
			cur[u] = best
			done[u] = true
		}
	}
	out := make([]int32, n)
	for u := int32(0); u < n; u++ {
		out[u] = tree.LeafID(cur[u])
	}
	return out
}

func TestOnlineEqualsMultiPass(t *testing.T) {
	// The paper's central structural claim: the single-pass online
	// algorithm produces exactly the result of l successive passes.
	for _, scorer := range []Scorer{ScorerFennel, ScorerLDG} {
		for _, specStr := range []string{"2:3", "4:4", "2:2:2"} {
			g := gen.RandomGeometric(800, 0.55, 17)
			tree := hierarchy.FromSpec(hierarchy.MustSpec(specStr))
			st := statsOf(t, g)
			cfg := Config{Epsilon: 0.03, Scorer: scorer}
			online := runOMS(t, g, tree, cfg)
			offline := multiPassReference(g, tree, st, cfg)
			for u := range online {
				if online[u] != offline[u] {
					t.Fatalf("scorer=%v spec=%s: node %d online=%d offline=%d",
						scorer, specStr, u, online[u], offline[u])
				}
			}
		}
	}
}

func TestOMSBetterMappingThanFlatFennel(t *testing.T) {
	// The headline process-mapping claim (§4.1): OMS beats Fennel (which
	// ignores the hierarchy) on J. Scaled-down check of the direction.
	spec := hierarchy.MustSpec("4:4:4")
	top := hierarchy.MustTopology(spec, hierarchy.MustDistances("1:10:100"))
	g := gen.RandomGeometric(6000, 0.55, 21)
	st := statsOf(t, g)
	tree := hierarchy.FromSpec(spec)

	omsParts := runOMS(t, g, tree, Config{Epsilon: 0.03})
	f, err := onepass.NewFennel(onepass.Config{K: spec.K(), Epsilon: 0.03}, st, 1)
	if err != nil {
		t.Fatal(err)
	}
	fenParts, err := onepass.Run(stream.NewMemory(g), f, 1)
	if err != nil {
		t.Fatal(err)
	}
	jOMS := metrics.MappingCost(g, omsParts, top)
	jFen := metrics.MappingCost(g, fenParts, top)
	if jOMS >= jFen {
		t.Fatalf("OMS J=%v not better than flat Fennel J=%v", jOMS, jFen)
	}
}

func TestNhOMSCutRegime(t *testing.T) {
	// §4.1: nh-OMS cuts ~5% more than Fennel but vastly fewer than
	// Hashing. Check both orderings with generous slack.
	g := gen.RandomGeometric(6000, 0.55, 23)
	st := statsOf(t, g)
	k := int32(64)

	o, err := NewGP(k, 4, st, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	nhParts, err := o.Run(stream.NewMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := onepass.NewFennel(onepass.Config{K: k, Epsilon: 0.03}, st, 1)
	fenParts, _ := onepass.Run(stream.NewMemory(g), f, 1)
	h, _ := onepass.NewHashing(onepass.Config{K: k, Epsilon: 0.03, Seed: 1}, st)
	hashParts, _ := onepass.Run(stream.NewMemory(g), h, 1)

	cutNh := metrics.EdgeCut(g, nhParts)
	cutFen := metrics.EdgeCut(g, fenParts)
	cutHash := metrics.EdgeCut(g, hashParts)
	if float64(cutNh) > 2.0*float64(cutFen) {
		t.Fatalf("nh-OMS cut %d too far above Fennel %d", cutNh, cutFen)
	}
	if cutNh*2 >= cutHash {
		t.Fatalf("nh-OMS cut %d not clearly below Hashing %d", cutNh, cutHash)
	}
}

func TestHybridTradeoff(t *testing.T) {
	// §4 tuning: hashing bottom layers degrades quality and is never
	// better on cut than the pure configuration.
	g := gen.RandomGeometric(5000, 0.55, 29)
	tree := hierarchy.FromSpec(hierarchy.MustSpec("4:4:4"))
	pure := metrics.EdgeCut(g, runOMS(t, g, tree, Config{Epsilon: 0.03}))
	hybrid := metrics.EdgeCut(g, runOMS(t, g, tree, Config{Epsilon: 0.03, HashLayers: 2}))
	allHash := metrics.EdgeCut(g, runOMS(t, g, tree, Config{Epsilon: 0.03, Scorer: ScorerHashing}))
	if pure > hybrid {
		t.Fatalf("pure cut %d worse than hybrid %d", pure, hybrid)
	}
	if hybrid > allHash {
		t.Fatalf("hybrid cut %d worse than full hashing %d", hybrid, allHash)
	}
}

func TestParallelBalancedAndComplete(t *testing.T) {
	g := gen.RMAT(8192, 40000, gen.SocialRMAT, 31)
	tree := hierarchy.FromSpec(hierarchy.MustSpec("4:16:2"))
	st := statsOf(t, g)
	o, err := New(tree, st, Config{Epsilon: 0.03, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := o.Run(stream.NewMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	for u, p := range parts {
		if p < 0 || p >= tree.K {
			t.Fatalf("node %d unassigned/out of range: %d", u, p)
		}
	}
	// The unsynchronized parallel scheme (§3.4) can overshoot a block by
	// at most a node per concurrently deciding worker; assert that bound
	// rather than strict Lmax.
	loads := metrics.BlockLoads(g, parts, tree.K)
	lmax := o.LmaxValue()
	for b, l := range loads {
		if l > lmax+8 {
			t.Fatalf("block %d load %d exceeds Lmax %d + worker slack", b, l, lmax)
		}
	}
}

func TestParallelQualityClose(t *testing.T) {
	g := gen.RandomGeometric(6000, 0.55, 37)
	tree := hierarchy.BuildArtificial(64, 4)
	seqCut := metrics.EdgeCut(g, runOMS(t, g, tree, Config{Epsilon: 0.03}))
	parCut := metrics.EdgeCut(g, runOMS(t, g, tree, Config{Epsilon: 0.03, Threads: 8}))
	if float64(parCut) > 3*float64(seqCut)+100 {
		t.Fatalf("parallel cut %d vastly worse than sequential %d", parCut, seqCut)
	}
}

func TestSequentialDeterminism(t *testing.T) {
	g := gen.RMAT(2048, 8192, gen.SocialRMAT, 41)
	tree := hierarchy.BuildArtificial(48, 4)
	a := runOMS(t, g, tree, Config{Epsilon: 0.03, Seed: 5})
	b := runOMS(t, g, tree, Config{Epsilon: 0.03, Seed: 5})
	for u := range a {
		if a[u] != b[u] {
			t.Fatal("sequential OMS not deterministic")
		}
	}
}

func TestRestreamNotWorse(t *testing.T) {
	g := gen.RandomGeometric(3000, 0.55, 43)
	tree := hierarchy.BuildArtificial(32, 4)
	st := statsOf(t, g)
	o1, _ := New(tree, st, Config{Epsilon: 0.03})
	once, err := o1.Run(stream.NewMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	cutOnce := metrics.EdgeCut(g, once)

	o2, _ := New(hierarchy.BuildArtificial(32, 4), st, Config{Epsilon: 0.03})
	re, err := o2.Restream(stream.NewMemory(g), 3)
	if err != nil {
		t.Fatal(err)
	}
	cutRe := metrics.EdgeCut(g, re)
	if err := metrics.CheckBalanced(g, re, tree.K, 0.03); err != nil {
		t.Fatal(err)
	}
	if float64(cutRe) > 1.05*float64(cutOnce) {
		t.Fatalf("restreaming made cut worse: %d -> %d", cutOnce, cutRe)
	}
}

func TestRestreamLoadConservation(t *testing.T) {
	g := gen.ErdosRenyi(1000, 4000, 47)
	tree := hierarchy.FromSpec(hierarchy.MustSpec("3:3"))
	st := statsOf(t, g)
	o, _ := New(tree, st, Config{Epsilon: 0.03})
	if _, err := o.Restream(stream.NewMemory(g), 2); err != nil {
		t.Fatal(err)
	}
	loads := o.TreeLoads()
	first, count := tree.Children(tree.Root)
	var sum int64
	for c := first; c < first+count; c++ {
		sum += loads[c]
	}
	if sum != st.TotalNodeWeight {
		t.Fatalf("restream leaked weight: depth-1 sum %d want %d", sum, st.TotalNodeWeight)
	}
}

func TestK1SingleLeaf(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 1)
	st := statsOf(t, g)
	o, err := NewGP(1, 4, st, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := o.Run(stream.NewMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p != 0 {
			t.Fatal("k=1 must map everything to PE 0")
		}
	}
}

func TestScorerString(t *testing.T) {
	if ScorerFennel.String() != "fennel" || ScorerLDG.String() != "ldg" ||
		ScorerHashing.String() != "hashing" {
		t.Fatal("scorer names wrong")
	}
	if Scorer(9).String() == "" {
		t.Fatal("unknown scorer should still format")
	}
}

func TestHashingScorerIgnoresEdges(t *testing.T) {
	g1 := gen.ErdosRenyi(500, 1500, 1)
	g2 := gen.ErdosRenyi(500, 1500, 2)
	tree := hierarchy.BuildArtificial(16, 4)
	cfg := Config{Epsilon: 0.03, Scorer: ScorerHashing, Seed: 11}
	p1 := runOMS(t, g1, tree, cfg)
	p2 := runOMS(t, g2, tree, cfg)
	for u := range p1 {
		if p1[u] != p2[u] {
			t.Fatal("hash scorer depends on structure")
		}
	}
}

func TestWeightedNodesRespectCapacity(t *testing.T) {
	// Heavy nodes must still satisfy the leaf balance constraint.
	b := graph.NewBuilder(40)
	for u := int32(0); u < 39; u++ {
		b.AddEdge(u, u+1)
	}
	for u := int32(0); u < 40; u++ {
		b.SetNodeWeight(u, 1+u%5)
	}
	g := b.Finish()
	tree := hierarchy.BuildArtificial(4, 2)
	parts := runOMS(t, g, tree, Config{Epsilon: 0.10})
	if err := metrics.CheckBalanced(g, parts, 4, 0.10); err != nil {
		t.Fatal(err)
	}
}

func TestAssignNodeOnMatchesAssignNode(t *testing.T) {
	// The worker-indexed entry and the pool-backed entry walk the same
	// deterministic path when driven sequentially in stream order.
	g := gen.ErdosRenyi(800, 4000, 3)
	st := statsOf(t, g)
	tree := hierarchy.BuildArtificial(16, 4)
	a, err := New(tree, st, Config{Epsilon: 0.03, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(tree, st, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if a.Workers() != 4 || b.Workers() != 1 {
		t.Fatalf("workers %d/%d, want 4/1", a.Workers(), b.Workers())
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		pa := a.AssignNodeOn(int(u)%4, u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u))
		pb := b.AssignNode(u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u))
		if pa != pb {
			t.Fatalf("node %d: AssignNodeOn %d, AssignNode %d", u, pa, pb)
		}
	}
}

func TestConcurrentAssignNodeBalancedAndComplete(t *testing.T) {
	// Concurrent pushes through both entries: every node lands, every
	// tree block respects its capacity (the CAS reserve enforces the
	// balance constraint even under contention), and the leaf loads are
	// exactly the pushed weight.
	g := gen.ErdosRenyi(4000, 16000, 7)
	st := statsOf(t, g)
	tree := hierarchy.BuildArtificial(64, 4)
	const workers = 8
	o, err := New(tree, st, Config{Epsilon: 0.03, Threads: workers})
	if err != nil {
		t.Fatal(err)
	}
	n := int(g.NumNodes())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/workers, (w+1)*n/workers
			for u := int32(lo); u < int32(hi); u++ {
				if w%2 == 0 {
					o.AssignNodeOn(w, u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u))
				} else {
					o.AssignNode(u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u))
				}
			}
		}(w)
	}
	wg.Wait()
	parts := o.Assignments()
	for u, p := range parts {
		if p < 0 || p >= o.K() {
			t.Fatalf("node %d unassigned or out of range: %d", u, p)
		}
	}
	loads := o.TreeLoads()
	for v, l := range loads {
		if cap := int64(tree.LeafCount(int32(v))) * o.LmaxValue(); l > cap {
			t.Fatalf("tree block %d overloaded: %d > %d", v, l, cap)
		}
	}
}

func TestForceAssignMatchesAssignLoads(t *testing.T) {
	// Replaying recorded decisions through ForceAssign reproduces the
	// loads and assignments of the original run exactly.
	g := gen.ErdosRenyi(600, 2400, 9)
	st := statsOf(t, g)
	tree := hierarchy.BuildArtificial(16, 4)
	orig, err := New(tree, st, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := orig.Run(stream.NewMemory(g))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := New(tree, st, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		replay.ForceAssign(u, g.NodeWeight(u), parts[u])
	}
	wantLoads, wantParts := orig.ExportState()
	gotLoads, gotParts := replay.ExportState()
	for i := range wantLoads {
		if wantLoads[i] != gotLoads[i] {
			t.Fatalf("tree block %d load %d, want %d", i, gotLoads[i], wantLoads[i])
		}
	}
	for u := range wantParts {
		if wantParts[u] != gotParts[u] {
			t.Fatalf("node %d part %d, want %d", u, gotParts[u], wantParts[u])
		}
	}
}
