package core

import (
	"testing"

	"oms/internal/stream"
)

// TestAdaptiveGrowsAndRatchets: an adaptive run starts with an empty
// assignment vector, grows it to cover arrivals and their neighbors,
// and ratchets the balance threshold monotonically upward.
func TestAdaptiveGrowsAndRatchets(t *testing.T) {
	o, err := NewGP(8, 4, stream.Stats{}, Config{Epsilon: 0.03, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Adaptive() {
		t.Fatal("run not adaptive")
	}
	if got := o.AssignmentOf(12345); got != -1 {
		t.Fatalf("unseen node reports block %d, want -1", got)
	}
	lastLmax := o.LmaxValue()
	for u := int32(0); u < 2000; u++ {
		adj := []int32{}
		if u > 0 {
			adj = append(adj, u-1)
		}
		o.ObserveAdaptive(u, 1, adj, nil)
		b := o.AssignNode(u, 1, adj, nil)
		if b < 0 || b >= 8 {
			t.Fatalf("node %d assigned %d", u, b)
		}
		if lm := o.LmaxValue(); lm < lastLmax {
			t.Fatalf("lmax shrank %d -> %d at node %d", lastLmax, lm, u)
		} else {
			lastLmax = lm
		}
	}
	if o.NumParts() < 2000 {
		t.Fatalf("parts grew to %d, want >= 2000", o.NumParts())
	}
	// Neighbors grow coverage ahead of arrivals.
	o.ObserveAdaptive(2000, 1, []int32{9000}, nil)
	if o.NumParts() < 9001 {
		t.Fatalf("parts %d do not cover the forward neighbor 9000", o.NumParts())
	}
}

// TestAdaptiveEstimatorStateRestoresThresholds: importing estimator
// state re-derives lmax, capacities, and alphas so a restored run
// scores exactly like the original.
func TestAdaptiveEstimatorStateRestoresThresholds(t *testing.T) {
	mk := func() *OMS {
		o, err := NewGP(16, 4, stream.Stats{}, Config{Epsilon: 0.03, Adaptive: true, AdaptiveHeadroom: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	a := mk()
	for u := int32(0); u < 500; u++ {
		var adj []int32
		if u > 0 {
			adj = append(adj, u-1)
		}
		a.ObserveAdaptive(u, 1, adj, nil)
		a.AssignNode(u, 1, adj, nil)
	}
	st, ok := a.ExportEstimator()
	if !ok {
		t.Fatal("no estimator state on adaptive run")
	}
	loads, parts := a.ExportState()

	b := mk()
	if err := b.ImportState(loads, parts); err != nil {
		t.Fatal(err)
	}
	if err := b.ImportEstimator(st); err != nil {
		t.Fatal(err)
	}
	if a.LmaxValue() != b.LmaxValue() {
		t.Fatalf("lmax %d vs %d after estimator import", a.LmaxValue(), b.LmaxValue())
	}
	for v := int32(0); v < a.Tree.NumNodes(); v++ {
		if a.AlphaOf(v) != b.AlphaOf(v) {
			t.Fatalf("alpha of tree block %d differs: %v vs %v", v, a.AlphaOf(v), b.AlphaOf(v))
		}
	}
	// Continuations agree bit for bit.
	for u := int32(500); u < 900; u++ {
		adj := []int32{u - 1, u - 250}
		a.ObserveAdaptive(u, 1, adj, nil)
		b.ObserveAdaptive(u, 1, adj, nil)
		if x, y := a.AssignNode(u, 1, adj, nil), b.AssignNode(u, 1, adj, nil); x != y {
			t.Fatalf("node %d: %d vs %d after restore", u, x, y)
		}
	}

	// Estimator state is rejected by declared runs.
	d, err := NewGP(16, 4, stream.Stats{N: 10, TotalNodeWeight: 10}, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ImportEstimator(st); err == nil {
		t.Fatal("declared run accepted estimator state")
	}
}

// TestAdaptiveReconcileTightensCaps: after Reconcile the threshold
// equals the declared-run value for the observed totals.
func TestAdaptiveReconcileTightensCaps(t *testing.T) {
	o, err := NewGP(8, 4, stream.Stats{}, Config{Epsilon: 0.03, Adaptive: true, AdaptiveHeadroom: 2})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 1000; u++ {
		o.ObserveAdaptive(u, 1, nil, nil)
		o.AssignNode(u, 1, nil, nil)
	}
	if _, _ = o.Reconcile(); o.LmaxValue() != 129 { // ceil(1.03*1000/8)
		t.Fatalf("reconciled lmax %d, want 129", o.LmaxValue())
	}
	decl, err := NewGP(8, 4, stream.Stats{N: 1000, TotalNodeWeight: 1000}, Config{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if o.LmaxValue() != decl.LmaxValue() {
		t.Fatalf("reconciled lmax %d != declared %d", o.LmaxValue(), decl.LmaxValue())
	}
}
