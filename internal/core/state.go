package core

import (
	"fmt"
	"sync/atomic"
)

// ExportState snapshots the run's mutable streaming state: the per-tree-
// block loads and the per-node leaf assignments. Together with the
// immutable construction inputs (tree, stats, config) this is everything
// a later ImportState needs to continue the stream at the exact next
// node — the paper's O(n + k) memory bound is also the size of a full
// checkpoint. Callers must hold the same serialization AssignNode
// requires; both slices are fresh copies.
func (o *OMS) ExportState() (loads []int64, parts []int32) {
	loads = make([]int64, len(o.loads))
	for i := range o.loads {
		loads[i] = atomic.LoadInt64(&o.loads[i])
	}
	// Adaptive runs export only the covered prefix: the growth slack
	// past it is all -1 by construction, and trimming keeps exports
	// independent of the amortization schedule.
	parts = append([]int32(nil), o.parts[:o.Coverage()]...)
	return loads, parts
}

// ImportState restores state captured by ExportState into a freshly
// constructed OMS with the same tree, stats, and config. Because the
// per-node walk is deterministic for a fixed stream order and seed,
// AssignNode calls after an import continue bit-identically to the run
// the state was exported from.
func (o *OMS) ImportState(loads []int64, parts []int32) error {
	if len(loads) != len(o.loads) {
		return fmt.Errorf("core: import has %d tree-block loads, this tree has %d", len(loads), len(o.loads))
	}
	if o.est != nil {
		// Adaptive runs size the assignment vector by what has arrived;
		// grow to the checkpoint's coverage instead of comparing against
		// a declaration.
		o.growParts(int32(len(parts)))
		o.parts = o.parts[:len(parts)]
		o.coverage = int32(len(parts))
	} else if len(parts) != len(o.parts) {
		return fmt.Errorf("core: import has %d node assignments, this stream declares %d", len(parts), len(o.parts))
	}
	k := o.Tree.K
	for u, p := range parts {
		if p < -1 || p >= k {
			return fmt.Errorf("core: import assigns node %d to block %d outside [-1,%d)", u, p, k)
		}
	}
	for i := range loads {
		atomic.StoreInt64(&o.loads[i], loads[i])
	}
	copy(o.parts, parts)
	return nil
}
