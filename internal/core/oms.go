// Package core implements the paper's contribution: the online recursive
// multi-section (OMS), a one-pass streaming algorithm that assigns every
// arriving node through all layers of a multi-section tree on the fly
// (Algorithm 1). With a topology hierarchy the leaves are PEs and the
// result is a process mapping; with an artificial recursive b-section
// tree (Algorithm 2) it solves plain graph partitioning ("nh-OMS").
//
// Per arriving node u the algorithm walks the tree from the root: at each
// internal block it scores the children with Fennel, LDG, or Hashing and
// descends into the best feasible one, charging u's weight to every block
// on the path. Complexity: O(m*l + n*sum a_i) time (Theorem 2), O(n + k)
// memory (Theorem 1) — the only per-node state is the final leaf id, from
// which all super-blocks follow (leaf ranges).
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"oms/internal/hierarchy"
	"oms/internal/onepass"
	"oms/internal/stream"
	"oms/internal/util"
)

// Scorer selects the one-pass objective used for the tree subproblems.
type Scorer int

// Available scorers. The paper's tuning picks Fennel (0.19% better cut,
// 3.89% better mapping than LDG), so it is the zero value.
const (
	ScorerFennel Scorer = iota
	ScorerLDG
	ScorerHashing
)

func (s Scorer) String() string {
	switch s {
	case ScorerFennel:
		return "fennel"
	case ScorerLDG:
		return "ldg"
	case ScorerHashing:
		return "hashing"
	default:
		return fmt.Sprintf("scorer(%d)", int(s))
	}
}

// Config controls an OMS run. The zero value gives the paper's tuned
// configuration except Epsilon, which callers set explicitly (the paper
// fixes 0.03).
type Config struct {
	Epsilon float64 // allowed imbalance
	Scorer  Scorer  // objective for non-hashed layers
	Gamma   float64 // Fennel exponent; 0 means 1.5
	// VanillaAlpha disables the per-subproblem adapted alpha of §3.2 and
	// scores every tree block with the flat k-way alpha. The paper's
	// tuning found adapted alpha 3.1% faster with 9.7% better mappings,
	// so adapted is the default (zero value).
	VanillaAlpha bool
	// HashLayers solves this many bottom layers of the multi-section with
	// Hashing instead of the configured scorer (§3.2 hybrid mapping,
	// Theorem 3). 0 disables hybridization.
	HashLayers int
	Seed       uint64
	// Threads is the worker count for Run. Values <= 1 select the
	// sequential, deterministic driver (the zero value is sequential on
	// purpose: parallelism is opt-in as in the paper's experiments).
	Threads int
	// Adaptive opens an open-ended run: the stats passed to New become
	// optional hints, an online estimator projects the final totals from
	// what actually arrives, and alpha plus the per-tree-block
	// capacities re-normalize as the projections ratchet (callers drive
	// this via ObserveAdaptive). Finish-time reconciliation is
	// Reconcile.
	Adaptive bool
	// AdaptiveHeadroom is the projection overshoot of the adaptive
	// estimator; <= 0 selects onepass.DefaultHeadroom. The documented
	// imbalance bound relative to the final observed totals is
	// (1+Epsilon)(1+AdaptiveHeadroom) - 1, plus integer rounding.
	AdaptiveHeadroom float64
}

// OMS is one streaming run's state: the multi-section tree, one load and
// one capacity per tree block (O(k) by Lemma 1), and the per-node leaf
// assignment (O(n)).
type OMS struct {
	Tree *hierarchy.Tree
	cfg  Config

	// lmax is atomic because adaptive runs ratchet it mid-stream while
	// monitoring readers poll LmaxValue; declared runs set it once.
	lmax      atomic.Int64
	loads     []int64   // per tree node, atomically updated
	caps      []int64   // t(v) * Lmax (§3.3 heterogeneous capacities)
	alphas    []float64 // per tree node: adapted alpha/sqrt(t(v))
	gamma     float64
	hashDepth int32 // tree depths >= hashDepth score children by hashing
	parts     []int32

	// est estimates the stream stats of an open-ended run online; nil
	// for declared runs. Mutations (ObserveAdaptive, ImportEstimator,
	// Reconcile) are serialized with assignment by the caller.
	est *onepass.Estimator
	// coverage is one past the highest node or neighbor id observed in
	// an adaptive run (<= len(parts), which over-allocates to amortize
	// growth); serialized with assignment like est.
	coverage int32

	// scratch holds one levelScratch per configured worker: indexed
	// access for the parallel drivers (Run, AssignNodeOn), where the
	// caller owns a stable worker id. The pool backs the convenience
	// path AssignNode, whose callers have no worker identity but must
	// still never share gain accumulators.
	scratch     []*levelScratch
	scratchPool sync.Pool
}

// levelScratch is per-worker gain accumulation across one subproblem's
// children (fanout-sized, cleared per level).
type levelScratch struct {
	gain []float64
}

// New prepares an OMS run over the given multi-section tree for a stream
// with the given global stats.
func New(tree *hierarchy.Tree, st stream.Stats, cfg Config) (*OMS, error) {
	if cfg.Epsilon < 0 {
		return nil, fmt.Errorf("core: negative epsilon %v", cfg.Epsilon)
	}
	if cfg.HashLayers < 0 || cfg.HashLayers > int(tree.MaxDepth) {
		return nil, fmt.Errorf("core: HashLayers %d outside [0,%d]", cfg.HashLayers, tree.MaxDepth)
	}
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	o := &OMS{
		Tree:  tree,
		cfg:   cfg,
		gamma: gamma,
		parts: make([]int32, st.N),
	}
	n := tree.NumNodes()
	o.loads = make([]int64, n)
	o.caps = make([]int64, n)
	o.alphas = make([]float64, n)
	if cfg.Adaptive {
		// st carries optional hints; the estimator floors its
		// projections at them and the initial thresholds derive from
		// the initial projection (zero without hints — the first
		// observation ratchets before the first assignment).
		o.est = onepass.NewEstimator(st, cfg.AdaptiveHeadroom)
		o.readapt()
	} else {
		o.lmax.Store(onepass.Lmax(st.TotalNodeWeight, tree.K, cfg.Epsilon))
		// §3.2/§3.3: a block covering t final blocks is scored with
		// alpha / sqrt(t); for homogeneous hierarchies this equals the
		// per-layer alpha_i = alpha / sqrt(prod_{r<i} a_r).
		o.applyStats(st)
	}
	// Decisions at depth d partition one layer-(MaxDepth-d) subproblem;
	// the bottom HashLayers layers hash (depth >= MaxDepth - HashLayers).
	o.hashDepth = tree.MaxDepth - int32(cfg.HashLayers)
	for i := range o.parts {
		o.parts[i] = -1
	}
	workers := cfg.Threads
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		o.scratch = append(o.scratch, &levelScratch{
			gain: make([]float64, tree.MaxFanout),
		})
	}
	o.scratchPool.New = func() any {
		return &levelScratch{gain: make([]float64, tree.MaxFanout)}
	}
	return o, nil
}

// NewGP prepares a "no hierarchy" run (nh-OMS): plain k-way graph
// partitioning through an artificial recursive base-section tree built by
// Algorithm 2. The paper's tuning selects base = 4 (16.7% faster, 3.2%
// fewer cut edges than base 2).
func NewGP(k, base int32, st stream.Stats, cfg Config) (*OMS, error) {
	if base < 2 {
		return nil, fmt.Errorf("core: base %d < 2", base)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k %d < 1", k)
	}
	return New(hierarchy.BuildArtificial(k, base), st, cfg)
}

// Assignments returns the final block (= PE) per node; -1 for nodes not
// yet streamed.
func (o *OMS) Assignments() []int32 { return o.parts }

// K returns the number of final blocks.
func (o *OMS) K() int32 { return o.Tree.K }

// TreeLoads returns a snapshot of the per-tree-block loads (for tests and
// diagnostics).
func (o *OMS) TreeLoads() []int64 {
	out := make([]int64, len(o.loads))
	for i := range o.loads {
		out[i] = atomic.LoadInt64(&o.loads[i])
	}
	return out
}

// AlphaOf exposes the adapted alpha of tree block v (tuning experiment).
func (o *OMS) AlphaOf(v int32) float64 { return o.alphas[v] }

// AssignNode runs the per-node body of Algorithm 1 for one arriving node
// and returns its permanent block: the incremental push-based entry into
// the same assignment path Run drives internally. Callers stream nodes in
// any order they like, one call per node; a sequence of AssignNode calls
// in natural node order is bit-identical to a sequential Run over the
// same stream. AssignNode is safe for concurrent use — each call draws
// its own gain scratch from a pool, and loads and assignments are
// updated atomically (the unsynchronized scheme of §3.4). Hot parallel
// loops that already own a stable worker id should prefer AssignNodeOn,
// which skips the pool. Calling it twice for the same node
// double-charges the tree loads, so gate re-pushes at the call site
// (AssignmentOf reports whether a node was already placed).
func (o *OMS) AssignNode(u int32, vwgt int32, adj []int32, ewgt []int32) int32 {
	sc := o.scratchPool.Get().(*levelScratch)
	o.assignWith(sc, u, vwgt, adj, ewgt)
	o.scratchPool.Put(sc)
	return atomic.LoadInt32(&o.parts[u])
}

// AssignNodeOn is AssignNode for parallel streaming with per-worker
// scratch (§3.4): worker must be a stable index in [0, Workers()), and
// no two concurrent calls may share it. Distinct workers may call
// concurrently — block loads are reserved with capacity-checked CAS and
// neighbor assignments are read racily, exactly as Run's parallel path.
func (o *OMS) AssignNodeOn(worker int, u int32, vwgt int32, adj []int32, ewgt []int32) int32 {
	o.assign(worker, u, vwgt, adj, ewgt)
	return atomic.LoadInt32(&o.parts[u])
}

// Workers returns how many concurrent AssignNodeOn callers the run was
// configured for (cfg.Threads, at least 1).
func (o *OMS) Workers() int { return len(o.scratch) }

// ForceAssign places u on the given final block directly, charging its
// weight to every tree block on the root-to-leaf path without scoring:
// the replay entry for streams whose assignments were already decided
// (and acknowledged) by an earlier parallel run. Parallel assignment is
// not deterministic, so a durable log replays the recorded decision
// itself rather than re-deriving it. The caller guards re-pushes, like
// AssignNode.
func (o *OMS) ForceAssign(u int32, vwgt int32, leaf int32) {
	t := o.Tree
	v := t.Root
	for !t.IsLeaf(v) {
		v = t.ChildContaining(v, leaf)
		atomic.AddInt64(&o.loads[v], int64(vwgt))
	}
	atomic.StoreInt32(&o.parts[u], leaf)
}

// Run performs the single streaming pass (Algorithm 1) and returns the
// partition vector. With cfg.Threads > 1 the node loop is parallelized in
// the vertex-centric fashion of §3.4: block loads are incremented
// atomically and neighbor assignments are read racily (a not-yet-visible
// neighbor simply contributes no gain, exactly as in the paper's OpenMP
// scheme).
func (o *OMS) Run(src stream.Source) ([]int32, error) {
	var err error
	if o.cfg.Threads <= 1 {
		err = src.ForEach(func(u int32, vwgt int32, adj []int32, ewgt []int32) {
			o.assign(0, u, vwgt, adj, ewgt)
		})
	} else {
		err = src.ForEachParallel(o.cfg.Threads, func(w int, u int32, vwgt int32, adj []int32, ewgt []int32) {
			o.assign(w, u, vwgt, adj, ewgt)
		})
	}
	if err != nil {
		return nil, err
	}
	return o.parts, nil
}

// Restream performs extraPasses additional sequential passes in the
// spirit of ReFennel/ReLDG (the paper's §3.2 "Remapping" extension,
// flagged there as future work): each pass re-scores every node with full
// knowledge of the previous pass's assignment, first removing the node's
// weight from its old root-to-leaf path so capacities stay exact.
func (o *OMS) Restream(src stream.Source, extraPasses int) ([]int32, error) {
	if _, err := o.Run(src); err != nil {
		return nil, err
	}
	return o.RestreamPasses(src, extraPasses)
}

// RestreamPasses performs the extra sequential passes of Restream on an
// OMS whose first pass already happened — either via Run or via a
// sequence of AssignNode pushes (a recorded push session restreams its
// buffer through here without re-charging the first pass).
func (o *OMS) RestreamPasses(src stream.Source, extraPasses int) ([]int32, error) {
	for p := 0; p < extraPasses; p++ {
		err := src.ForEach(func(u int32, vwgt int32, adj []int32, ewgt []int32) {
			o.unassign(u, vwgt)
			o.assign(0, u, vwgt, adj, ewgt)
		})
		if err != nil {
			return nil, err
		}
	}
	return o.parts, nil
}

// RestreamPassesParallel is RestreamPasses with the retract-and-reassign
// loop fanned out over the per-worker scratch of §3.4: each worker owns a
// disjoint slice of the stream, retracts its nodes' weights atomically
// and re-scores them with the same racy-neighbor-read scheme as the
// parallel first pass. Every node is retracted and re-placed by exactly
// one worker per pass, so loads stay exact; neighbor assignments read
// mid-move may be one pass stale, which is the same benign race the
// paper accepts for parallel streaming. threads <= 1 (or a single
// configured worker) falls back to the deterministic sequential passes.
func (o *OMS) RestreamPassesParallel(src stream.Source, extraPasses, threads int) ([]int32, error) {
	if threads > len(o.scratch) {
		threads = len(o.scratch)
	}
	if threads <= 1 {
		return o.RestreamPasses(src, extraPasses)
	}
	for p := 0; p < extraPasses; p++ {
		err := src.ForEachParallel(threads, func(w int, u int32, vwgt int32, adj []int32, ewgt []int32) {
			o.unassignAtomic(u, vwgt)
			o.assign(w, u, vwgt, adj, ewgt)
		})
		if err != nil {
			return nil, err
		}
	}
	return o.parts, nil
}

// unassignAtomic removes u's weight from its current path with atomic
// load updates (the parallel restream counterpart of unassign; only u's
// owning worker calls it, so the parts slot itself is single-writer).
func (o *OMS) unassignAtomic(u int32, vwgt int32) {
	leaf := atomic.LoadInt32(&o.parts[u])
	if leaf < 0 {
		return
	}
	t := o.Tree
	v := t.Root
	for !t.IsLeaf(v) {
		v = t.ChildContaining(v, leaf)
		atomic.AddInt64(&o.loads[v], -int64(vwgt))
	}
	atomic.StoreInt32(&o.parts[u], -1)
}

// unassign removes u's weight from its current path (sequential passes
// only).
func (o *OMS) unassign(u int32, vwgt int32) {
	leaf := o.parts[u]
	if leaf < 0 {
		return
	}
	t := o.Tree
	v := t.Root
	for !t.IsLeaf(v) {
		v = t.ChildContaining(v, leaf)
		o.loads[v] -= int64(vwgt)
	}
	o.parts[u] = -1
}

// assign walks node u from the root to a leaf (the per-node body of
// Algorithm 1). Under parallel streaming the chosen block is reserved
// with a compare-and-swap that re-validates its capacity: the paper
// leaves this race open ("a block can still be overloaded if multiple
// threads decide to assign a node to it at the same time"), but because
// the capacities of a block's children sum exactly to its own, a node
// reserved into the parent always fits into some child (unit weights), so
// rescoring on CAS failure enforces the balance constraint outright.
func (o *OMS) assign(worker int, u int32, vwgt int32, adj []int32, ewgt []int32) {
	o.assignWith(o.scratch[worker], u, vwgt, adj, ewgt)
}

// assignWith is assign with the gain scratch passed explicitly (the
// pool-backed AssignNode path has no worker index).
func (o *OMS) assignWith(sc *levelScratch, u int32, vwgt int32, adj []int32, ewgt []int32) {
	t := o.Tree
	v := t.Root
	w := int64(vwgt)
	for !t.IsLeaf(v) {
		first, count := t.Children(v)
		var chosen int32
		for attempt := 0; ; attempt++ {
			if t.Depth[v] >= o.hashDepth || o.cfg.Scorer == ScorerHashing {
				chosen = o.hashChild(u, v, first, count, w)
			} else {
				chosen = o.scoreChild(sc, u, v, first, count, w, adj, ewgt)
			}
			if o.reserve(chosen, w) {
				break
			}
			if attempt >= maxReserveAttempts {
				// Heavily weighted nodes can fragment so that no single
				// child fits; fall back to the paper's unsynchronized
				// increment rather than stall.
				atomic.AddInt64(&o.loads[chosen], w)
				break
			}
		}
		v = chosen
	}
	atomic.StoreInt32(&o.parts[u], t.LeafID(v))
}

// maxReserveAttempts bounds rescoring under CAS contention before
// degrading to the paper's racy increment (never reached for unit-weight
// streams, where a feasible child always exists).
const maxReserveAttempts = 8

// reserve atomically charges w to block c iff the capacity allows it.
func (o *OMS) reserve(c int32, w int64) bool {
	for {
		cur := atomic.LoadInt64(&o.loads[c])
		if cur+w > o.caps[c] {
			return false
		}
		if atomic.CompareAndSwapInt64(&o.loads[c], cur, cur+w) {
			return true
		}
	}
}

// scoreChild scores the children of v with the configured objective and
// returns the best feasible child (ties to the lighter block).
func (o *OMS) scoreChild(sc *levelScratch, u, v, first, count int32, w int64, adj []int32, ewgt []int32) int32 {
	t := o.Tree
	gain := sc.gain[:count]
	for i := range gain {
		gain[i] = 0
	}
	kl, kr := t.KL[v], t.KR[v]
	for i, nb := range adj {
		p := atomic.LoadInt32(&o.parts[nb])
		if p < kl || p > kr { // includes unassigned (-1)
			continue
		}
		c := t.ChildContaining(v, p)
		if ewgt != nil {
			gain[c-first] += float64(ewgt[i])
		} else {
			gain[c-first]++
		}
	}
	best := int32(-1)
	bestScore := 0.0
	var bestLoad int64
	ldg := o.cfg.Scorer == ScorerLDG
	for i := int32(0); i < count; i++ {
		c := first + i
		load := atomic.LoadInt64(&o.loads[c])
		var score float64
		var ok bool
		if ldg {
			score, ok = onepass.LDGScore(gain[i], load, w, o.caps[c])
		} else {
			score, ok = onepass.FennelScore(gain[i], load, w, o.caps[c], o.alphas[c], o.gamma)
		}
		if !ok {
			continue
		}
		if best < 0 || score > bestScore || (score == bestScore && load < bestLoad) {
			best, bestScore, bestLoad = c, score, load
		}
	}
	if best < 0 {
		best = o.leastRelativeLoad(first, count)
	}
	return best
}

// hashChild places u by hashing, probing siblings when the target is at
// capacity (keeps partitions balanced, which the paper reports for all
// algorithms).
func (o *OMS) hashChild(u, v, first, count int32, w int64) int32 {
	h := int32(util.HashMod(uint64(u), o.cfg.Seed^uint64(v)*0x9e3779b97f4a7c15, int(count)))
	for probe := int32(0); probe < count; probe++ {
		c := first + (h+probe)%count
		if atomic.LoadInt64(&o.loads[c])+w <= o.caps[c] {
			return c
		}
	}
	return o.leastRelativeLoad(first, count)
}

// leastRelativeLoad is the forced-placement fallback: the child with the
// smallest load/capacity ratio (capacities differ under Algorithm 2's
// heterogeneous splits).
func (o *OMS) leastRelativeLoad(first, count int32) int32 {
	best := first
	bestRatio := math.Inf(1)
	for i := int32(0); i < count; i++ {
		c := first + i
		r := float64(atomic.LoadInt64(&o.loads[c])) / float64(o.caps[c])
		if r < bestRatio {
			best, bestRatio = c, r
		}
	}
	return best
}
