package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"oms/internal/onepass"
	"oms/internal/stream"
)

// Adaptive reports whether this run estimates its stream stats online
// (Config.Adaptive) instead of trusting a declared n/m up front.
func (o *OMS) Adaptive() bool { return o.est != nil }

// Estimator exposes the run's online stats estimator (nil for declared
// runs): observed totals, the projection in force, and its revision.
func (o *OMS) Estimator() *onepass.Estimator { return o.est }

// NumParts returns the current length of the assignment vector: the
// declared n for declared runs, the grown-so-far capacity for adaptive
// ones.
func (o *OMS) NumParts() int32 { return int32(len(o.parts)) }

// Coverage returns how many leading entries of the assignment vector
// are meaningful: the declared n for declared runs, one past the
// highest node or neighbor id observed for adaptive ones (the vector
// itself over-allocates to amortize growth). Results and checkpoints
// trim to it.
func (o *OMS) Coverage() int32 {
	if o.est == nil {
		return int32(len(o.parts))
	}
	return o.coverage
}

// ObserveAdaptive records one arriving node before it is assigned: the
// assignment vector grows to cover the node and its neighbors, the
// estimator accumulates the node's weight and adjacency, and — when the
// projection ratchets — alpha and every tree-block capacity are
// re-normalized to the new estimates. It returns whether a ratchet
// happened.
//
// Callers must serialize ObserveAdaptive with every assignment path
// (AssignNode, AssignNodeOn, ForceAssign): re-adaptation rewrites the
// capacities and alphas those paths read. The push session guarantees
// this by observing during (single-threaded) batch admission, before
// any parallel fan-out.
func (o *OMS) ObserveAdaptive(u int32, vwgt int32, adj []int32, ewgt []int32) bool {
	if o.est == nil {
		return false
	}
	hi := u
	for _, nb := range adj {
		if nb > hi {
			hi = nb
		}
	}
	o.growParts(hi + 1)
	if hi+1 > o.coverage {
		o.coverage = hi + 1
	}
	var ewSum int64
	if ewgt != nil {
		for _, w := range ewgt {
			ewSum += int64(w)
		}
	} else {
		ewSum = int64(len(adj))
	}
	if !o.est.Observe(vwgt, len(adj), ewSum) {
		return false
	}
	o.readapt()
	return true
}

// growParts extends the assignment vector to cover at least n nodes,
// doubling to amortize. Serialized with assignment like every adaptive
// mutation; -1 marks the fresh slots unassigned.
func (o *OMS) growParts(n int32) {
	if int(n) <= len(o.parts) {
		return
	}
	grown := len(o.parts) * 2
	if grown < int(n) {
		grown = int(n)
	}
	if grown < 1024 {
		grown = 1024
	}
	fresh := make([]int32, grown)
	copy(fresh, o.parts)
	for i := len(o.parts); i < grown; i++ {
		fresh[i] = -1
	}
	o.parts = fresh
}

// readapt recomputes the balance threshold, every tree-block capacity,
// and every adapted alpha from the estimator's current projection (the
// §3.2/§3.3 derivations, re-evaluated as estimates ratchet).
func (o *OMS) readapt() {
	est := o.est.Estimates()
	o.lmax.Store(onepass.Lmax(est.TotalNodeWeight, o.Tree.K, o.cfg.Epsilon))
	o.applyStats(est)
}

// applyStats derives caps and alphas from the given stats and the
// current lmax.
func (o *OMS) applyStats(st stream.Stats) {
	lmax := o.lmax.Load()
	alphaRoot := onepass.Alpha(o.Tree.K, st.TotalEdgeWeight, st.N)
	for v := int32(0); v < o.Tree.NumNodes(); v++ {
		t := o.Tree.LeafCount(v)
		o.caps[v] = int64(t) * lmax
		if o.cfg.VanillaAlpha {
			o.alphas[v] = alphaRoot
		} else {
			o.alphas[v] = alphaRoot / math.Sqrt(float64(t))
		}
	}
}

// Reconcile replaces the adaptive projection with the exact observed
// totals and re-normalizes capacities and alphas one final time — the
// Finish-time reconciliation, once the stream is sealed and the true
// totals are known. Later restream passes then refine against exact
// capacities, like a declared run's. It returns the relative projection
// error per total at the moment of sealing ((estimate-observed)/observed).
// No-op (zero errors) for declared runs.
func (o *OMS) Reconcile() (errN, errW float64) {
	if o.est == nil {
		return 0, 0
	}
	errN, errW = o.est.Reconcile()
	o.readapt()
	return errN, errW
}

// ExportEstimator snapshots the estimator state of an adaptive run; ok
// is false for declared runs.
func (o *OMS) ExportEstimator() (st onepass.EstimatorState, ok bool) {
	if o.est == nil {
		return onepass.EstimatorState{}, false
	}
	return o.est.Export(), true
}

// ImportEstimator restores estimator state captured by ExportEstimator
// (or logged in a durable stats-revision frame) and re-derives the
// dependent thresholds, so assignment continues exactly as it would
// have in the run the state came from. Serialized with assignment, like
// every adaptive mutation.
func (o *OMS) ImportEstimator(st onepass.EstimatorState) error {
	if o.est == nil {
		return fmt.Errorf("core: estimator state for a declared-stats run")
	}
	o.est.Import(st)
	// No parts growth here: the assignment vector tracks what has
	// actually arrived (observations grow it), not the projection, so a
	// restored run keeps the exact vector length of the original.
	o.readapt()
	return nil
}

// LmaxValue returns the current leaf balance threshold. For adaptive
// runs it ratchets upward with the estimates until Finish reconciles it
// against the true totals; reads are safe concurrently with streaming.
func (o *OMS) LmaxValue() int64 { return o.lmax.Load() }

// AssignmentOf returns the block of node u, or -1 while u is unassigned
// (including ids an adaptive run has not grown to yet).
func (o *OMS) AssignmentOf(u int32) int32 {
	if int(u) >= len(o.parts) {
		return -1
	}
	return atomic.LoadInt32(&o.parts[u])
}
