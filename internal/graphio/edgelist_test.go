package graphio

import (
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# SNAP-style comment
% matrix-market-style comment
0 1
1 2
2 0
`
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle parsed as n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if len(ids) != 3 {
		t.Fatalf("id map size %d", len(ids))
	}
}

func TestReadEdgeListCompactsSparseIDs(t *testing.T) {
	in := "1000000 5\n5 70000\n"
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("n=%d, want 3", g.NumNodes())
	}
	// First-appearance order: 1000000 -> 0, 5 -> 1, 70000 -> 2.
	if ids[1000000] != 0 || ids[5] != 1 || ids[70000] != 2 {
		t.Fatalf("compaction order wrong: %v", ids)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("edges misplaced after compaction")
	}
}

func TestReadEdgeListDropsSelfLoopsAndMergesDuplicates(t *testing.T) {
	in := "0 0\n1 2\n2 1\n1 2\n"
	g, _, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 exists (interned) but is isolated; the 1-2 edge appears once.
	if g.NumNodes() != 3 {
		t.Fatalf("n=%d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1", g.NumEdges())
	}
	if g.Degree(0) != 0 {
		t.Fatal("self-loop created an edge")
	}
}

func TestReadEdgeListWeights(t *testing.T) {
	in := "0 1 5\n1 2 7\n0 1 2\n"
	g, _, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate edges merge by summing: 5 + 2 = 7.
	adj := g.Neighbors(0)
	ew := g.EdgeWeights(0)
	if len(adj) != 1 || ew == nil || ew[0] != 7 {
		t.Fatalf("weight merge wrong: adj=%v ew=%v", adj, ew)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"one field":       "42\n",
		"negative-ish id": "a b\n",
		"bad weight":      "0 1 x\n",
		"zero weight":     "0 1 0\n",
	} {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted %q", name, in)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, ids, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || len(ids) != 0 {
		t.Fatal("empty input produced nodes")
	}
}

func TestReadEdgeListValidAfterParse(t *testing.T) {
	in := "3 7\n7 9\n9 3\n3 9\n11 3\n"
	g, _, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
