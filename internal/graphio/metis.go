// Package graphio reads and writes graphs in the METIS ascii format (the
// "vertex-stream format" the paper converts its instances to) and in a
// compact binary format for fast reloads. The METIS scanner is also the
// backing parser for disk-based streaming (internal/stream).
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"oms/internal/graph"
)

// Header is the first non-comment line of a METIS file.
type Header struct {
	N int32 // number of nodes
	M int64 // number of undirected edges
	// Fmt is the METIS format code: bit 0 = edge weights present,
	// bit 1 = node weights present (after optional node size, which we do
	// not support), e.g. "011" means node+edge weights.
	HasEdgeWeights bool
	HasNodeWeights bool
	NCon           int // number of node weight constraints; only 1 supported
}

// ParseHeader parses the METIS header line.
func ParseHeader(line string) (Header, error) {
	fields := splitFields(line)
	if len(fields) < 2 {
		return Header{}, fmt.Errorf("graphio: header needs at least 2 fields, got %q", line)
	}
	n, err := strconv.ParseInt(fields[0], 10, 32)
	if err != nil || n < 0 {
		return Header{}, fmt.Errorf("graphio: bad node count %q", fields[0])
	}
	m, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || m < 0 {
		return Header{}, fmt.Errorf("graphio: bad edge count %q", fields[1])
	}
	h := Header{N: int32(n), M: m, NCon: 1}
	if len(fields) >= 3 {
		code := fields[2]
		// The format code is read right-to-left: last digit = edge
		// weights, second-to-last = node weights.
		if len(code) == 0 || len(code) > 3 {
			return Header{}, fmt.Errorf("graphio: bad fmt code %q", code)
		}
		for _, c := range code {
			if c != '0' && c != '1' {
				return Header{}, fmt.Errorf("graphio: bad fmt code %q", code)
			}
		}
		h.HasEdgeWeights = code[len(code)-1] == '1'
		if len(code) >= 2 {
			h.HasNodeWeights = code[len(code)-2] == '1'
		}
	}
	if len(fields) >= 4 {
		ncon, err := strconv.Atoi(fields[3])
		if err != nil || ncon < 1 {
			return Header{}, fmt.Errorf("graphio: bad ncon %q", fields[3])
		}
		if ncon != 1 {
			return Header{}, fmt.Errorf("graphio: ncon=%d unsupported (only 1)", ncon)
		}
		h.NCon = ncon
	}
	return h, nil
}

// ReadMetis parses a whole METIS graph from r. The result passes
// graph.Validate (the reader funnels edges through the builder, which
// symmetrizes and deduplicates, tolerating slightly inconsistent files).
func ReadMetis(r io.Reader) (*graph.Graph, error) {
	sc, err := NewMetisScanner(r)
	if err != nil {
		return nil, err
	}
	h := sc.Header()
	b := graph.NewBuilder(h.N)
	// The reserve is a performance hint, so cap it: a header may claim
	// any edge count, and pre-allocating gigabytes on the header's word
	// alone would let a short malformed file exhaust memory before the
	// body disproves it (the builder grows by append past the hint).
	b.Reserve(int(min(h.M, 1<<20)))
	u := int32(0)
	for sc.Next() {
		if h.HasNodeWeights {
			b.SetNodeWeight(u, sc.NodeWeight())
		}
		adj, w := sc.Adjacency()
		for i, v := range adj {
			if v > u || v == u { // each undirected edge once; loops dropped by builder
				if w != nil {
					b.AddWeightedEdge(u, v, w[i])
				} else {
					b.AddEdge(u, v)
				}
			}
		}
		u++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if u != h.N {
		return nil, fmt.Errorf("graphio: header says %d nodes, file has %d adjacency lines", h.N, u)
	}
	g := b.Finish()
	if g.NumEdges() != h.M {
		// Tolerate, but only for files with duplicate/self edges; strict
		// inputs produced by WriteMetis always round-trip exactly.
		if g.NumEdges() > h.M {
			return nil, fmt.Errorf("graphio: file has %d edges, header claims %d", g.NumEdges(), h.M)
		}
	}
	return g, nil
}

// WriteMetis writes g in METIS format, emitting weight sections only when
// the graph carries non-unit weights.
func WriteMetis(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmtCode := ""
	hasE, hasV := g.AdjWgt != nil, g.VWgt != nil
	switch {
	case hasV && hasE:
		fmtCode = " 011"
	case hasV:
		fmtCode = " 010"
	case hasE:
		fmtCode = " 001"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", g.NumNodes(), g.NumEdges(), fmtCode); err != nil {
		return err
	}
	var buf []byte
	for u := int32(0); u < g.NumNodes(); u++ {
		buf = buf[:0]
		if hasV {
			buf = strconv.AppendInt(buf, int64(g.VWgt[u]), 10)
		}
		adj := g.Neighbors(u)
		ew := g.EdgeWeights(u)
		for i, v := range adj {
			if len(buf) > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendInt(buf, int64(v)+1, 10) // METIS is 1-indexed
			if hasE {
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(ew[i]), 10)
			}
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MetisScanner streams a METIS file one node at a time without holding the
// graph in memory: the core of disk-based one-pass partitioning. Adjacency
// slices returned by Adjacency are valid until the next call to Next.
type MetisScanner struct {
	br     *bufio.Reader
	header Header
	node   int32
	vwgt   int32
	adj    []int32
	wgt    []int32
	err    error
	done   bool
}

// NewMetisScanner reads the header and prepares per-node iteration.
func NewMetisScanner(r io.Reader) (*MetisScanner, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	line, err := nextContentLine(br)
	if err != nil {
		return nil, fmt.Errorf("graphio: missing header: %w", err)
	}
	h, err := ParseHeader(line)
	if err != nil {
		return nil, err
	}
	return &MetisScanner{br: br, header: h, node: -1}, nil
}

// Header returns the parsed file header.
func (s *MetisScanner) Header() Header { return s.header }

// Next advances to the next node's adjacency line. It returns false at end
// of input or on error (check Err).
func (s *MetisScanner) Next() bool {
	if s.done || s.err != nil {
		return false
	}
	if s.node+1 >= s.header.N {
		s.done = true
		return false
	}
	line, err := nextAdjacencyLine(s.br)
	if err != nil {
		if err == io.EOF {
			s.err = fmt.Errorf("graphio: unexpected EOF after %d of %d nodes", s.node+1, s.header.N)
		} else {
			s.err = err
		}
		return false
	}
	s.node++
	s.adj = s.adj[:0]
	s.wgt = s.wgt[:0]
	s.vwgt = 1
	fields := splitFields(line)
	i := 0
	if s.header.HasNodeWeights {
		if len(fields) == 0 {
			s.err = fmt.Errorf("graphio: node %d: missing node weight", s.node)
			return false
		}
		v, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil || v < 0 {
			s.err = fmt.Errorf("graphio: node %d: bad node weight %q", s.node, fields[0])
			return false
		}
		s.vwgt = int32(v)
		i = 1
	}
	for i < len(fields) {
		v, err := strconv.ParseInt(fields[i], 10, 32)
		if err != nil || v < 1 || int32(v) > s.header.N {
			s.err = fmt.Errorf("graphio: node %d: bad neighbor %q", s.node, fields[i])
			return false
		}
		s.adj = append(s.adj, int32(v-1))
		i++
		if s.header.HasEdgeWeights {
			if i >= len(fields) {
				s.err = fmt.Errorf("graphio: node %d: missing edge weight", s.node)
				return false
			}
			w, err := strconv.ParseInt(fields[i], 10, 32)
			if err != nil || w < 1 {
				s.err = fmt.Errorf("graphio: node %d: bad edge weight %q", s.node, fields[i])
				return false
			}
			s.wgt = append(s.wgt, int32(w))
			i++
		}
	}
	return true
}

// Node returns the current node id (0-indexed).
func (s *MetisScanner) Node() int32 { return s.node }

// NodeWeight returns the current node's weight (1 if the file has none).
func (s *MetisScanner) NodeWeight() int32 { return s.vwgt }

// Adjacency returns the current adjacency and parallel edge weights (nil
// if the file carries none). Slices are reused by Next.
func (s *MetisScanner) Adjacency() ([]int32, []int32) {
	if s.header.HasEdgeWeights {
		return s.adj, s.wgt
	}
	return s.adj, nil
}

// Err returns the first error encountered.
func (s *MetisScanner) Err() error { return s.err }

// nextContentLine returns the next line that is not blank or a '%' comment
// (used for the header, where blank lines carry no meaning).
func nextContentLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		if len(line) == 0 && err != nil {
			return "", err
		}
		trimmed := trimSpace(line)
		if len(trimmed) == 0 || trimmed[0] == '%' {
			if err != nil {
				return "", io.EOF
			}
			continue
		}
		return trimmed, nil
	}
}

// nextAdjacencyLine returns the next non-comment line of the body. Blank
// lines are returned as empty strings: in METIS format they encode a node
// with no neighbors.
func nextAdjacencyLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		if len(line) == 0 && err != nil {
			return "", err
		}
		trimmed := trimSpace(line)
		if len(trimmed) > 0 && trimmed[0] == '%' {
			if err != nil {
				return "", io.EOF
			}
			continue
		}
		return trimmed, nil
	}
}

func trimSpace(s string) string {
	lo, hi := 0, len(s)
	for lo < hi && isSpace(s[lo]) {
		lo++
	}
	for hi > lo && isSpace(s[hi-1]) {
		hi--
	}
	return s[lo:hi]
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// splitFields splits on runs of whitespace without allocating a new string
// per call beyond the result slice.
func splitFields(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		j := i
		for j < len(s) && !isSpace(s[j]) {
			j++
		}
		if j > i {
			out = append(out, s[i:j])
		}
		i = j
	}
	return out
}
