package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSizeCap bounds the *declared* sizes a fuzz input may claim: the
// readers allocate proportionally to a legitimate header (that is the
// caller's contract for real multi-gigabyte graphs), so the harness
// rejects headers far beyond what the fuzz engine could ever back with
// a real body. Parser logic past the header is exercised in full.
const (
	fuzzMaxN = 1 << 16
	fuzzMaxM = 1 << 18
)

// FuzzReadMetis feeds arbitrary bytes to the METIS reader: it must
// never panic, and any graph it accepts must be structurally sound
// (symmetric CSR within the declared node count).
func FuzzReadMetis(f *testing.F) {
	f.Add([]byte("4 3\n2\n1 3\n2 4\n3\n"))
	f.Add([]byte("3 2 011\n1 2 7\n2 1 7 3 1\n1 3 1\n"))
	f.Add([]byte("2 1 001\n2 5\n1 5\n"))
	f.Add([]byte("% comment\n 3 1 \n2\n1\n\n"))
	f.Add([]byte("4 3 010\n9 2\n1 1 3\n1 2\n1\n"))
	f.Add([]byte("999999999 999999999\n1\n"))
	f.Add([]byte(""))
	f.Add([]byte("x y\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := NewMetisScanner(bytes.NewReader(data))
		if err != nil {
			return
		}
		h := sc.Header()
		if h.N > fuzzMaxN || h.M > fuzzMaxM {
			return
		}
		// The streaming scanner must walk the same bytes without
		// panicking, whatever Next and Err decide.
		for sc.Next() {
			adj, w := sc.Adjacency()
			if w != nil && len(w) != len(adj) {
				t.Fatalf("node %d: %d weights for %d neighbors", sc.Node(), len(w), len(adj))
			}
		}
		_ = sc.Err()

		g, err := ReadMetis(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.NumNodes() != h.N {
			t.Fatalf("accepted graph has %d nodes, header declares %d", g.NumNodes(), h.N)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}

// FuzzReadEdgeList feeds arbitrary bytes to the SNAP edge-list reader:
// never panic, and accepted graphs must be sound with ids compacted
// densely.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# comment\n10 20 3\n20 30 2\n10 10\n"))
	f.Add([]byte("% also comment\n5 6\n6 5\n5 6\n"))
	f.Add([]byte("18446744073709551615 1\n"))
	f.Add([]byte("1 2 0\n"))
	f.Add([]byte("-3 4\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Bound the line count like the size cap above: each accepted
		// line allocates a constant amount, so the input's own size is
		// the natural budget.
		if bytes.Count(data, []byte("\n")) > 1<<16 || len(data) > 1<<20 {
			return
		}
		g, ids, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			if g != nil || ids != nil {
				t.Fatal("error return with non-nil graph")
			}
			return
		}
		if int32(len(ids)) != g.NumNodes() {
			t.Fatalf("id map has %d entries for %d nodes", len(ids), g.NumNodes())
		}
		seen := make(map[int32]bool, len(ids))
		for raw, id := range ids {
			if raw < 0 || id < 0 || id >= g.NumNodes() || seen[id] {
				t.Fatalf("bad or duplicate compact id %d for raw %d", id, raw)
			}
			seen[id] = true
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}

// FuzzParseHeader pins the header grammar on its own: arbitrary single
// lines must parse or fail without panicking, and accepted headers obey
// the documented field ranges.
func FuzzParseHeader(f *testing.F) {
	f.Add("4 3")
	f.Add("4 3 011 1")
	f.Add("0 0")
	f.Add("  12   9   1  ")
	f.Add("9999999999999999999999 1")
	f.Add("4 3 2")
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsRune(line, '\n') {
			line = line[:strings.IndexByte(line, '\n')]
		}
		h, err := ParseHeader(line)
		if err != nil {
			return
		}
		if h.N < 0 || h.M < 0 || h.NCon != 1 {
			t.Fatalf("accepted header with bad fields: %+v", h)
		}
	})
}
