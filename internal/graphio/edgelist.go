package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"oms/internal/graph"
)

// ReadEdgeList parses the SNAP-style edge-list format: one "u v" (or
// "u v w" with an integer weight) pair per line, '#' and '%' comment
// lines, blank lines ignored. Node ids may be arbitrary non-negative
// integers with gaps — they are compacted to 0..n-1 in first-appearance
// order, which preserves the temporal/crawl order SNAP files typically
// carry and therefore the stream locality one-pass partitioners see.
// Self loops are dropped and duplicate edges merged, per the paper's
// instance preparation ("removing parallel edges, self loops, and
// directions").
//
// The mapping from original ids to compact ids is returned alongside the
// graph.
func ReadEdgeList(r io.Reader) (*graph.Graph, map[int64]int32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	idOf := make(map[int64]int32)
	order := make([]int64, 0, 1024)
	intern := func(raw int64) int32 {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := int32(len(order))
		idOf[raw] = id
		order = append(order, raw)
		return id
	}

	type edge struct {
		u, v int32
		w    int32
	}
	var edges []edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graphio: edge list line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := parseInt64(fields[0])
		if err != nil || u < 0 {
			return nil, nil, fmt.Errorf("graphio: edge list line %d: bad node id %q", lineNo, fields[0])
		}
		v, err := parseInt64(fields[1])
		if err != nil || v < 0 {
			return nil, nil, fmt.Errorf("graphio: edge list line %d: bad node id %q", lineNo, fields[1])
		}
		w := int32(1)
		if len(fields) >= 3 {
			wv, err := parseInt64(fields[2])
			if err != nil || wv < 1 || wv > 1<<30 {
				return nil, nil, fmt.Errorf("graphio: edge list line %d: bad weight %q", lineNo, fields[2])
			}
			w = int32(wv)
		}
		if u == v {
			// Still intern the id so isolated self-loop nodes exist.
			intern(u)
			continue
		}
		edges = append(edges, edge{intern(u), intern(v), w})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graphio: reading edge list: %w", err)
	}

	b := graph.NewBuilder(int32(len(order)))
	b.Reserve(len(edges))
	for _, e := range edges {
		b.AddWeightedEdge(e.u, e.v, e.w)
	}
	return b.Finish(), idOf, nil
}

func parseInt64(s string) (int64, error) {
	var v int64
	if len(s) == 0 {
		return 0, fmt.Errorf("empty")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-digit %q", c)
		}
		d := int64(c - '0')
		if v > (1<<62)/10 {
			return 0, fmt.Errorf("overflow")
		}
		v = v*10 + d
	}
	return v, nil
}
