package graphio

import (
	"bytes"
	"strings"
	"testing"

	"oms/internal/graph"
	"oms/internal/util"
)

func triangle() *graph.Graph {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	return b.Finish()
}

func randomGraph(n int32, m int, seed uint64) *graph.Graph {
	rng := util.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))))
	}
	return b.Finish()
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := int32(0); u < a.NumNodes(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
		if a.NodeWeight(u) != b.NodeWeight(u) {
			return false
		}
		wa, wb := a.EdgeWeights(u), b.EdgeWeights(u)
		for i := range na {
			va, vb := int32(1), int32(1)
			if wa != nil {
				va = wa[i]
			}
			if wb != nil {
				vb = wb[i]
			}
			if va != vb {
				return false
			}
		}
	}
	return true
}

func TestParseHeaderBasic(t *testing.T) {
	h, err := ParseHeader("10 20")
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 10 || h.M != 20 || h.HasEdgeWeights || h.HasNodeWeights {
		t.Fatalf("header %+v", h)
	}
}

func TestParseHeaderFmtCodes(t *testing.T) {
	cases := []struct {
		code   string
		ew, nw bool
	}{
		{"0", false, false}, {"1", true, false}, {"10", false, true},
		{"11", true, true}, {"011", true, true}, {"000", false, false},
		{"001", true, false}, {"010", false, true},
	}
	for _, c := range cases {
		h, err := ParseHeader("5 4 " + c.code)
		if err != nil {
			t.Fatalf("code %q: %v", c.code, err)
		}
		if h.HasEdgeWeights != c.ew || h.HasNodeWeights != c.nw {
			t.Fatalf("code %q: got ew=%v nw=%v", c.code, h.HasEdgeWeights, h.HasNodeWeights)
		}
	}
}

func TestParseHeaderErrors(t *testing.T) {
	for _, line := range []string{"", "5", "x y", "5 -1", "5 4 2", "5 4 01x", "5 4 011 2"} {
		if _, err := ParseHeader(line); err == nil {
			t.Errorf("header %q accepted", line)
		}
	}
}

func TestReadMetisTriangle(t *testing.T) {
	in := "% a comment\n3 3\n2 3\n1 3\n1 2\n"
	g, err := ReadMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, triangle()) {
		t.Fatal("triangle mismatch")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMetisWeighted(t *testing.T) {
	// fmt 011: node weights then (neighbor, edge weight) pairs.
	in := "3 2 011\n5 2 7\n1 1 7 3 9\n2 2 9\n"
	g, err := ReadMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeWeight(0) != 5 || g.NodeWeight(1) != 1 || g.NodeWeight(2) != 2 {
		t.Fatalf("node weights: %d %d %d", g.NodeWeight(0), g.NodeWeight(1), g.NodeWeight(2))
	}
	if g.TotalEdgeWeight() != 16 {
		t.Fatalf("edge weight total %d want 16", g.TotalEdgeWeight())
	}
}

func TestReadMetisIsolated(t *testing.T) {
	in := "3 1\n2\n1\n\n"
	g, err := ReadMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 || g.Degree(2) != 0 {
		t.Fatalf("got %v", g)
	}
}

func TestReadMetisErrors(t *testing.T) {
	cases := []string{
		"3 1\n2\n",           // truncated
		"2 1\n3\n1\n",        // neighbor out of range
		"2 1\n0\n1\n",        // neighbor zero (1-indexed format)
		"2 1 1\n2\n1\n",      // missing edge weight
		"2 1 10\nx 2\n1 1\n", // bad node weight
		"2 1 1\n2 0\n1 0\n",  // non-positive edge weight
	}
	// An overstated edge header ("2 5\n2\n1\n") is tolerated per the
	// reader contract (some public instances have such headers);
	// understating is the error, covered below.
	for _, in := range cases {
		if _, err := ReadMetis(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadMetisHeaderUnderstatesEdges(t *testing.T) {
	in := "3 1\n2 3\n1 3\n1 2\n" // 3 actual edges, header claims 1
	if _, err := ReadMetis(strings.NewReader(in)); err == nil {
		t.Fatal("understated header accepted")
	}
}

func TestMetisRoundTrip(t *testing.T) {
	g := randomGraph(100, 400, 17)
	var buf bytes.Buffer
	if err := WriteMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("METIS round trip mismatch")
	}
}

func TestMetisRoundTripWeighted(t *testing.T) {
	rng := util.NewRNG(3)
	b := graph.NewBuilder(50)
	for i := 0; i < 200; i++ {
		b.AddWeightedEdge(int32(rng.Intn(50)), int32(rng.Intn(50)), int32(rng.Intn(9))+1)
	}
	for u := int32(0); u < 50; u++ {
		b.SetNodeWeight(u, int32(rng.Intn(5))+1)
	}
	g := b.Finish()
	var buf bytes.Buffer
	if err := WriteMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("weighted METIS round trip mismatch")
	}
}

func TestMetisRoundTripEmptyAndIsolated(t *testing.T) {
	for _, g := range []*graph.Graph{graph.NewBuilder(0).Finish(), graph.NewBuilder(7).Finish()} {
		var buf bytes.Buffer
		if err := WriteMetis(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadMetis(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestScannerStreamsNodes(t *testing.T) {
	g := randomGraph(60, 150, 5)
	var buf bytes.Buffer
	if err := WriteMetis(&buf, g); err != nil {
		t.Fatal(err)
	}
	sc, err := NewMetisScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var count int32
	for sc.Next() {
		if sc.Node() != count {
			t.Fatalf("node id %d want %d", sc.Node(), count)
		}
		adj, _ := sc.Adjacency()
		want := g.Neighbors(count)
		if len(adj) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", count, len(adj), len(want))
		}
		for i := range adj {
			if adj[i] != want[i] {
				t.Fatalf("node %d neighbor %d: %d want %d", count, i, adj[i], want[i])
			}
		}
		count++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if count != g.NumNodes() {
		t.Fatalf("scanned %d nodes want %d", count, g.NumNodes())
	}
}

func TestScannerCommentsAndBlank(t *testing.T) {
	// Blank body lines encode isolated nodes; comments are skipped.
	in := "% c1\n\n3 1\n% mid\n2\n\n% tail\n1\n"
	sc, err := NewMetisScanner(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	degs := []int{}
	for sc.Next() {
		adj, _ := sc.Adjacency()
		degs = append(degs, len(adj))
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(degs) != 3 || degs[0] != 1 || degs[1] != 0 || degs[2] != 1 {
		t.Fatalf("degrees %v, want [1 0 1]", degs)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(200, 1000, 11)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary round trip mismatch")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTripWeighted(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(2, 3, 8)
	b.SetNodeWeight(0, 2)
	g := b.Finish()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("weighted binary round trip mismatch")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := randomGraph(50, 100, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated binary accepted")
	}
}
