package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"oms/internal/graph"
)

// Binary format: little-endian; magic "OMSG", u32 version, u32 flags
// (bit0 edge weights, bit1 node weights), i32 n, i64 m, then Xadj (n+1 x
// i64), Adjncy (2m x i32), optional AdjWgt (2m x i32), optional VWgt (n x
// i32). Loads with two big reads instead of text parsing; used by the
// bench harness to cache generated instances.

const (
	binaryMagic   = "OMSG"
	binaryVersion = 1
	flagEdgeWgt   = 1 << 0
	flagNodeWgt   = 1 << 1
)

// WriteBinary serializes g.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint32
	if g.AdjWgt != nil {
		flags |= flagEdgeWgt
	}
	if g.VWgt != nil {
		flags |= flagNodeWgt
	}
	hdr := []any{uint32(binaryVersion), flags, int32(g.NumNodes()), int64(g.NumEdges())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, arr := range []any{g.Xadj, g.Adjncy} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	if g.AdjWgt != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.AdjWgt); err != nil {
			return err
		}
	}
	if g.VWgt != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.VWgt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graphio: binary magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graphio: bad magic %q", magic)
	}
	var version, flags uint32
	var n int32
	var m int64
	for _, p := range []any{&version, &flags, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graphio: unsupported binary version %d", version)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graphio: corrupt sizes n=%d m=%d", n, m)
	}
	g := &graph.Graph{
		Xadj:   make([]int64, n+1),
		Adjncy: make([]int32, 2*m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Xadj); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adjncy); err != nil {
		return nil, err
	}
	if flags&flagEdgeWgt != 0 {
		g.AdjWgt = make([]int32, 2*m)
		if err := binary.Read(br, binary.LittleEndian, g.AdjWgt); err != nil {
			return nil, err
		}
	}
	if flags&flagNodeWgt != 0 {
		g.VWgt = make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, g.VWgt); err != nil {
			return nil, err
		}
	}
	return g, nil
}
