package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEmitShape(t *testing.T) {
	var buf bytes.Buffer
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC)
	l := NewWithClock(&buf, func() time.Time { return fixed })

	l.Emit(EventSessionCreated, map[string]any{"session": "s1-feed", "k": 4})
	l.Emit(EventSessionSealed, nil) // nil fields must not panic

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2: %q", len(lines), buf.String())
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if got["event"] != EventSessionCreated || got["session"] != "s1-feed" || got["k"] != float64(4) {
		t.Fatalf("line 0 fields %v", got)
	}
	if got["ts"] != fixed.Format(time.RFC3339Nano) {
		t.Fatalf("ts %v, want the injected clock's instant", got["ts"])
	}
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if got["event"] != EventSessionSealed {
		t.Fatalf("line 1 event %v", got["event"])
	}
}

func TestNilLoggerNoop(t *testing.T) {
	var l *Logger
	l.Emit(EventSessionFault, map[string]any{"x": 1}) // must not panic
}

// TestEmitConcurrent: lines from concurrent emitters never interleave
// (each line stays one valid JSON object). Run under -race.
func TestEmitConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Emit(EventRefineDone, map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("%d lines, want 800", len(lines))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d interleaved or corrupt: %q", i, ln)
		}
	}
}
