// Package telemetry is omsd's structured event log: one JSON object per
// line, machine-parseable, for the session lifecycle facts operators
// grep for (created, recovered, sealed, evicted, refined, faulted) that
// the ad-hoc log.Printf lines used to bury in prose. The daemon enables
// it with -log-json; a nil *Logger is a no-op, so call sites emit
// unconditionally.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types the service emits. The strings are API for log pipelines:
// change them and downstream filters silently go dark, so they only
// ever grow.
const (
	EventSessionCreated   = "session_created"
	EventSessionRecovered = "session_recovered"
	EventSessionSealed    = "session_sealed"
	EventSessionEvicted   = "session_evicted"
	EventSessionDeleted   = "session_deleted"
	EventSessionFault     = "session_fault"
	EventRefineDone       = "refine_done"
	EventDaemonReady      = "daemon_ready"
	EventDaemonShutdown   = "daemon_shutdown"
)

// Logger writes newline-delimited JSON events. Safe for concurrent use;
// the zero-value pointer (nil) drops every event, so wiring is optional
// at every call site.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// New returns a Logger writing to w.
func New(w io.Writer) *Logger {
	return &Logger{w: w, now: time.Now}
}

// NewWithClock injects a clock (tests pin timestamps with it).
func NewWithClock(w io.Writer, now func() time.Time) *Logger {
	return &Logger{w: w, now: now}
}

// Emit writes one event line: {"ts":...,"event":...,<fields>}. Field
// keys "ts" and "event" are reserved and overwritten if present. A nil
// logger is a no-op. Marshal failures drop the event (the log is
// advisory; the serving path must never fail on it).
func (l *Logger) Emit(event string, fields map[string]any) {
	if l == nil {
		return
	}
	if fields == nil {
		fields = make(map[string]any, 2)
	}
	fields["ts"] = l.now().UTC().Format(time.RFC3339Nano)
	fields["event"] = event
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(b)
	l.mu.Unlock()
}
