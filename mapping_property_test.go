package oms_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"oms"
)

// randomTopology draws a random hierarchy spec (2-4 levels, factors
// 2-5) with strictly positive non-decreasing distances.
func randomTopology(rng *rand.Rand) *oms.Topology {
	levels := 2 + rng.Intn(3)
	spec, dist := "", ""
	d := 1 + rng.Float64()
	for i := 0; i < levels; i++ {
		if i > 0 {
			spec += ":"
			dist += ":"
		}
		spec += fmt.Sprint(2 + rng.Intn(4))
		dist += fmt.Sprintf("%.3f", d)
		d *= 1 + rng.Float64()*9
	}
	return oms.MustTopology(spec, dist)
}

// randomGraph draws one of the generator families at a random size.
func randomGraph(rng *rand.Rand) *oms.Graph {
	n := int32(200 + rng.Intn(1800))
	seed := rng.Uint64()
	switch rng.Intn(4) {
	case 0:
		return oms.GenDelaunay(n, seed)
	case 1:
		return oms.GenRGG2D(n, seed)
	case 2:
		return oms.GenRMATSocial(n, int64(n)*4, seed)
	default:
		return oms.GenWattsStrogatz(n, 3, 0.1, seed)
	}
}

// TestMappingCostEqualsWeightedLevelCuts is the satellite property: for
// random graphs × random topologies × random (even invalid-balance)
// assignments, Result.MappingCost equals the distance-weighted sum of
// Result.LevelCuts, and the level cuts themselves sum to the edge cut.
func TestMappingCostEqualsWeightedLevelCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng)
		top := randomTopology(rng)
		k := top.Spec.K()

		parts := make([]int32, g.NumNodes())
		for u := range parts {
			parts[u] = rng.Int31n(k)
		}
		res := &oms.Result{Parts: parts, K: k}

		cuts := res.LevelCuts(g, top)
		if len(cuts) != top.Spec.Levels() {
			t.Fatalf("trial %d: %d level cuts for %d levels", trial, len(cuts), top.Spec.Levels())
		}
		var weighted, total float64
		for i, c := range cuts {
			if c < 0 {
				t.Fatalf("trial %d: negative level cut %v", trial, c)
			}
			weighted += c * top.Dist.D[i]
			total += c
		}
		cost := res.MappingCost(g, top)
		if diff := math.Abs(cost - weighted); diff > 1e-6*(1+math.Abs(cost)) {
			t.Fatalf("trial %d: MappingCost %v != weighted LevelCuts %v (spec %s)", trial, cost, weighted, top.Spec)
		}
		if cut := float64(res.EdgeCut(g)); math.Abs(total-cut) > 1e-6*(1+cut) {
			t.Fatalf("trial %d: LevelCuts sum %v != edge cut %v", trial, total, cut)
		}
	}
}

// TestPEDistanceSharedLevelConsistency pins the two topology oracles to
// each other on randomized specs: for every PE pair, PEDistance is
// exactly the distance of SharedLevel, both are symmetric, zero/-1 on
// the diagonal, and adjacent PEs inside one innermost group share level
// 0.
func TestPEDistanceSharedLevelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		top := randomTopology(rng)
		k := top.Spec.K()
		if k > 256 {
			continue // keep the O(k^2) scan quick
		}
		for x := int32(0); x < k; x++ {
			for y := int32(0); y < k; y++ {
				lvl := top.SharedLevel(x, y)
				d := top.PEDistance(x, y)
				if x == y {
					if lvl != -1 || d != 0 {
						t.Fatalf("trial %d: diagonal (%d): level %d dist %v", trial, x, lvl, d)
					}
					continue
				}
				if lvl < 0 || lvl >= top.Spec.Levels() {
					t.Fatalf("trial %d: pair (%d,%d) level %d outside [0,%d)", trial, x, y, lvl, top.Spec.Levels())
				}
				if want := top.Dist.D[lvl]; d != want {
					t.Fatalf("trial %d: pair (%d,%d): distance %v, level %d implies %v", trial, x, y, d, lvl, want)
				}
				if top.SharedLevel(y, x) != lvl || top.PEDistance(y, x) != d {
					t.Fatalf("trial %d: asymmetry at (%d,%d)", trial, x, y)
				}
			}
		}
		// Neighbors within one innermost group are level-0 pairs.
		a1 := top.Spec.Factors[0]
		for p := int32(0); p+1 < k; p++ {
			if p%a1 != a1-1 {
				if lvl := top.SharedLevel(p, p+1); lvl != 0 {
					t.Fatalf("trial %d: PEs %d,%d in one innermost group share level %d, want 0", trial, p, p+1, lvl)
				}
			}
		}
	}
}
