package oms_test

import (
	"math"
	"testing"

	"oms"
)

// pushAll streams g through s in natural node order.
func pushAll(t *testing.T, s *oms.Session, g *oms.Graph) {
	t.Helper()
	for u := int32(0); u < g.NumNodes(); u++ {
		if _, err := s.Push(u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u)); err != nil {
			t.Fatalf("push %d: %v", u, err)
		}
	}
}

// TestAdaptiveSessionPartitionsWithoutDeclaredStats is the tentpole
// acceptance at the library level: an open-ended session (no n, no m)
// streams a graph, finishes balanced within the documented adaptive
// bound, and lands within a modest factor of the declared-stats cut.
func TestAdaptiveSessionPartitionsWithoutDeclaredStats(t *testing.T) {
	g := oms.GenDelaunay(6000, 7)
	const k = 64
	const eps = 0.03

	decl, err := oms.NewSession(oms.SessionConfig{
		Stats: oms.StreamStats{N: g.NumNodes(), M: g.NumEdges(),
			TotalNodeWeight: g.TotalNodeWeight(), TotalEdgeWeight: g.TotalEdgeWeight()},
		K:       k,
		Options: oms.Options{Epsilon: eps},
	})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, decl, g)
	declRes, err := decl.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Pure streaming (no retention): the projection alone carries the
	// balance bound — (1+eps)(1+headroom) with the tight default
	// headroom, about twice the declared slack — at a documented
	// quality cold-start.
	adpt, err := oms.NewSession(oms.SessionConfig{K: k, Options: oms.Options{Epsilon: eps}, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !adpt.Adaptive() {
		t.Fatal("session not adaptive")
	}
	pushAll(t, adpt, g)
	res, err := adpt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if int32(len(res.Parts)) < g.NumNodes() {
		t.Fatalf("adaptive result covers %d of %d nodes", len(res.Parts), g.NumNodes())
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		if res.Parts[u] < 0 || res.Parts[u] >= k {
			t.Fatalf("node %d assigned %d outside [0,%d)", u, res.Parts[u], k)
		}
	}
	checkLoads := func(parts []int32, bound int64, label string) {
		t.Helper()
		loads := make([]int64, k)
		for u := int32(0); u < g.NumNodes(); u++ {
			loads[parts[u]] += int64(g.NodeWeight(u))
		}
		for b, l := range loads {
			if l > bound {
				t.Fatalf("%s: block %d load %d exceeds bound %d", label, b, l, bound)
			}
		}
	}
	avg := float64(g.TotalNodeWeight()) / float64(k)
	pureBound := int64(math.Ceil((1+eps)*(1+0.03)*avg)) + 1
	checkLoads(res.Parts, pureBound, "pure adaptive")
	declCut := declRes.EdgeCut(g)
	if adptCut := res.EdgeCut(g); float64(adptCut) > 3*float64(declCut)+100 {
		t.Fatalf("pure adaptive cut %d beyond the cold-start envelope of declared cut %d", adptCut, declCut)
	}

	// Retained (Record): the optimistic projection plus the finish-time
	// reconcile pass lands near the declared result on both metrics.
	ret, err := oms.NewSession(oms.SessionConfig{K: k, Options: oms.Options{Epsilon: eps}, Adaptive: true, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, ret, g)
	retRes, err := ret.Finish()
	if err != nil {
		t.Fatal(err)
	}
	checkLoads(retRes.Parts, int64(math.Ceil((1+eps)*avg))+1, "retained adaptive")
	if c := retRes.EdgeCut(g); float64(c) > 1.25*float64(declCut)+100 {
		t.Fatalf("retained adaptive cut %d, want within 25%% of declared %d", c, declCut)
	}

	info, ok := adpt.AdaptiveInfo()
	if !ok {
		t.Fatal("no AdaptiveInfo on adaptive session")
	}
	if info.Observed.N != g.NumNodes() || info.Observed.TotalNodeWeight != g.TotalNodeWeight() {
		t.Fatalf("observed totals %+v disagree with the graph (n=%d w=%d)", info.Observed, g.NumNodes(), g.TotalNodeWeight())
	}
	// Each undirected edge was pushed once per endpoint, so observed m
	// reconciles exactly.
	if info.Observed.M != g.NumEdges() {
		t.Fatalf("observed m %d, graph has %d", info.Observed.M, g.NumEdges())
	}
	if info.Estimated != info.Observed {
		t.Fatalf("finish did not reconcile: est %+v vs obs %+v", info.Estimated, info.Observed)
	}
	if info.EstimateErrN < 0 || info.EstimateErrW < 0 {
		t.Fatalf("negative estimate error (projection below observed): %+v", info)
	}
	if info.Revision == 0 {
		t.Fatal("projection never ratcheted")
	}
}

// TestAdaptiveDeterministicAndBatchParity: the adaptive walk stays
// deterministic for a fixed arrival order, and a sequential-threads
// PushBatch is bit-identical to the same sequence of Push calls.
func TestAdaptiveDeterministicAndBatchParity(t *testing.T) {
	g := oms.GenRMATSocial(4000, 16000, 3)
	cfg := oms.SessionConfig{K: 32, Adaptive: true, Options: oms.Options{Seed: 5}}

	run := func() []int32 {
		s, err := oms.NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pushAll(t, s, g)
		res, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return res.Parts
	}
	a, b := run(), run()
	for u := range a {
		if a[u] != b[u] {
			t.Fatalf("node %d differs across identical runs: %d vs %d", u, a[u], b[u])
		}
	}

	bs, err := oms.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []oms.Node
	for u := int32(0); u < g.NumNodes(); u++ {
		batch = append(batch, oms.Node{U: u, W: g.NodeWeight(u), Adj: g.Neighbors(u), EW: g.EdgeWeights(u)})
		if len(batch) == 512 || u == g.NumNodes()-1 {
			if _, err := bs.PushBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	res, err := bs.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for u := range a {
		if a[u] != res.Parts[u] {
			t.Fatalf("node %d: batch %d vs sequential %d", u, res.Parts[u], a[u])
		}
	}
}

// TestAdaptiveCheckpointResume: exporting mid-stream and restoring into
// a fresh adaptive session continues bit-identically — estimator state
// included, so later ratchets fire at the same instants.
func TestAdaptiveCheckpointResume(t *testing.T) {
	g := oms.GenRGG2D(5000, 11)
	cfg := oms.SessionConfig{K: 48, Adaptive: true, Options: oms.Options{Seed: 2}}

	full, err := oms.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := g.NumNodes() / 3
	for u := int32(0); u < cut; u++ {
		if _, err := full.Push(u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u)); err != nil {
			t.Fatal(err)
		}
	}
	snap := full.ExportState()
	if snap.Estimator == nil {
		t.Fatal("adaptive checkpoint lacks estimator state")
	}

	resumed, err := oms.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	for u := cut; u < g.NumNodes(); u++ {
		bf, err := full.Push(u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u))
		if err != nil {
			t.Fatal(err)
		}
		br, err := resumed.Push(u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u))
		if err != nil {
			t.Fatal(err)
		}
		if bf != br {
			t.Fatalf("node %d: resumed %d vs uninterrupted %d", u, br, bf)
		}
	}
	fres, _ := full.Finish()
	rres, _ := resumed.Finish()
	if fres.Lmax != rres.Lmax || len(fres.Parts) != len(rres.Parts) {
		t.Fatalf("finish disagrees: lmax %d/%d parts %d/%d", fres.Lmax, rres.Lmax, len(fres.Parts), len(rres.Parts))
	}
	fi, _ := full.AdaptiveInfo()
	ri, _ := resumed.AdaptiveInfo()
	if fi.Observed != ri.Observed || fi.Revision != ri.Revision {
		t.Fatalf("estimator state diverged: %+v vs %+v", fi, ri)
	}
}

// TestAdaptiveHintsAndValidation: hints floor the projection, and the
// declared-session validation still rejects n == 0 without Adaptive.
func TestAdaptiveHintsAndValidation(t *testing.T) {
	if _, err := oms.NewSession(oms.SessionConfig{K: 4}); err == nil {
		t.Fatal("n=0 without Adaptive must fail")
	}
	if _, err := oms.NewSession(oms.SessionConfig{K: 4, Adaptive: true, AdaptiveMaxN: -1}); err == nil {
		t.Fatal("negative adaptive cap must fail")
	}
	if _, err := oms.NewSession(oms.SessionConfig{K: 4, Adaptive: true, AdaptiveHeadroom: -0.5}); err == nil {
		t.Fatal("negative headroom must fail")
	}

	s, err := oms.NewSession(oms.SessionConfig{
		K:        8,
		Adaptive: true,
		Stats:    oms.StreamStats{N: 1000, TotalNodeWeight: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(0, 1, []int32{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	info, _ := s.AdaptiveInfo()
	if info.Estimated.N < 1000 {
		t.Fatalf("hinted projection %d below the 1000-node hint", info.Estimated.N)
	}

	// The id ceiling still applies.
	capped, err := oms.NewSession(oms.SessionConfig{K: 4, Adaptive: true, AdaptiveMaxN: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := capped.Push(100, 1, nil, nil); err == nil {
		t.Fatal("push beyond AdaptiveMaxN must fail")
	}
	if _, err := capped.Push(5, 1, []int32{101}, nil); err == nil {
		t.Fatal("neighbor beyond AdaptiveMaxN must fail")
	}
}

// TestAdaptiveRestreamRefines: the offline refinement walk keeps
// working on adaptive sessions once the stream seals — Finish
// reconciled against the true totals, so extra passes refine against
// exact capacities and never worsen the cut.
func TestAdaptiveRestreamRefines(t *testing.T) {
	g := oms.GenDelaunay(4000, 9)
	s, err := oms.NewSession(oms.SessionConfig{K: 32, Adaptive: true, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, s, g)
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cut0 := res.EdgeCut(g)
	ref, err := s.Restream(2)
	if err != nil {
		t.Fatal(err)
	}
	if c := ref.EdgeCut(g); c > cut0 {
		t.Fatalf("restream worsened the cut: %d -> %d", cut0, c)
	}

	// ReconcilePass is the durable-log flavor of the same repair: over
	// an external replay of the recorded stream it must keep the result
	// balanced and not worsen the cut either.
	s2, err := oms.NewSession(oms.SessionConfig{K: 32, Adaptive: true, AdaptiveHeadroom: oms.RetainedAdaptiveHeadroom})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, s2, g)
	res2, err := s2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := s2.ReconcilePass(s.Source())
	if err != nil {
		t.Fatal(err)
	}
	if c := rp.EdgeCut(g); c > res2.EdgeCut(g) {
		t.Fatalf("reconcile pass worsened the cut: %d -> %d", res2.EdgeCut(g), c)
	}
	if imb := rp.Imbalance(g); imb > 0.035 {
		t.Fatalf("reconcile pass left imbalance %v above epsilon", imb)
	}
}
