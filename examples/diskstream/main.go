// Disk streaming: partition a graph that never resides in memory. The
// streaming algorithms keep O(n + k) state — one int32 per node plus the
// multi-section tree — while the graph is scanned once from disk, the
// regime the paper targets for huge instances.
//
//	go run ./examples/diskstream
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"oms"
)

func main() {
	dir, err := os.MkdirTemp("", "oms-diskstream")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "rgg.metis")

	// Materialize a 1M-node random geometric graph to disk, then forget
	// it. (In practice the file comes from a converter; the paper's
	// instances are in exactly this METIS vertex-stream format.)
	fmt.Println("writing graph to disk...")
	func() {
		g := oms.GenRGG2D(1_000_000, 3)
		if err := oms.WriteMetisFile(path, g); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	}()
	runtime.GC()

	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file size: %.1f MB\n\n", float64(info.Size())/(1<<20))

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	// Partition into 4096 blocks directly from the file.
	src := oms.NewDiskSource(path)
	start := time.Now()
	res, err := oms.Partition(src, 4096, oms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	fmt.Printf("partitioned k=4096 in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("algorithm state: %.1f MB live heap growth (graph file: %.1f MB)\n",
		float64(after.HeapAlloc-before.HeapAlloc)/(1<<20), float64(info.Size())/(1<<20))

	// Verify quality offline (this loads the graph, but only for the
	// report).
	g, err := oms.ReadMetisFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge-cut %d, imbalance %.4f\n", res.EdgeCut(g), res.Imbalance(g))
	if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		log.Fatal(err)
	}
	fmt.Println("balance constraint satisfied")
}
