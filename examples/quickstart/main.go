// Quickstart: partition a graph into k balanced blocks with the
// streaming online recursive multi-section (nh-OMS) and inspect the
// result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"oms"
)

func main() {
	// A Delaunay mesh with 200k nodes — the del-family of the paper's
	// benchmark set. Any oms.Graph works; build your own with
	// oms.NewBuilder or load one with oms.ReadMetisFile.
	fmt.Println("generating graph...")
	g := oms.GenDelaunay(200_000, 42)
	fmt.Printf("n=%d m=%d\n\n", g.NumNodes(), g.NumEdges())

	// Partition into 1024 blocks. The zero Options select the paper's
	// tuned defaults: Fennel scoring, adapted alpha, 3% imbalance,
	// base-4 multi-section tree, sequential streaming.
	start := time.Now()
	res, err := oms.PartitionGraph(g, 1024, oms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nh-OMS:   cut=%-8d imbalance=%.4f  time=%v\n",
		res.EdgeCut(g), res.Imbalance(g), time.Since(start).Round(time.Millisecond))

	// Compare with the flat one-pass competitors. Fennel scans all k
	// blocks per node (O(m + nk)); OMS walks a base-4 tree
	// (O((m+4n) log k)) — same idea, far less work per node.
	for _, c := range []struct {
		name   string
		scorer oms.Scorer
	}{
		{"Fennel", oms.ScorerFennel},
		{"LDG", oms.ScorerLDG},
		{"Hashing", oms.ScorerHashing},
	} {
		start := time.Now()
		r, err := oms.PartitionOnePass(oms.NewMemorySource(g), 1024, c.scorer, oms.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  cut=%-8d imbalance=%.4f  time=%v\n",
			c.name+":", r.EdgeCut(g), r.Imbalance(g), time.Since(start).Round(time.Millisecond))
	}

	// res.Parts[u] is the permanent block of node u, assigned the moment
	// u was streamed.
	fmt.Printf("\nfirst ten assignments: %v\n", res.Parts[:10])
}
