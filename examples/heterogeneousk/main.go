// Heterogeneous k: partition into block counts that are NOT powers of
// the multi-section base (paper §3.3). Algorithm 2 builds a recursive
// b-section tree whose sub-blocks cover unequal leaf ranges — e.g. for
// k = 5 the first split covers {2, 3} final blocks with capacities
// 2*Lmax and 3*Lmax — and the adapted Fennel alpha (scaled by 1/sqrt(t))
// keeps the heterogeneous capacities balanced on the fly.
//
//	go run ./examples/heterogeneousk
package main

import (
	"fmt"
	"log"

	"oms"
)

func main() {
	fmt.Println("generating graph...")
	g := oms.GenRGG2D(300_000, 17)
	fmt.Printf("n=%d m=%d\n\n", g.NumNodes(), g.NumEdges())

	fmt.Printf("%-6s %-10s %-10s %-12s %s\n", "k", "cut", "Lmax", "max load", "imbalance")
	for _, k := range []int32{5, 13, 37, 100, 1000} {
		res, err := oms.PartitionGraph(g, k, oms.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
			log.Fatalf("k=%d violates balance: %v", k, err)
		}
		loads := make([]int64, k)
		for u, b := range res.Parts {
			_ = u
			loads[b]++
		}
		var maxLoad int64
		for _, l := range loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		fmt.Printf("%-6d %-10d %-10d %-12d %.4f\n",
			k, res.EdgeCut(g), res.Lmax, maxLoad, res.Imbalance(g))
	}

	// The k=5 case from the paper: the root split covers 2 and 3 leaves.
	res, err := oms.PartitionGraph(g, 5, oms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	loads := make([]int64, 5)
	for _, b := range res.Parts {
		loads[b]++
	}
	fmt.Printf("\nk=5 block loads: %v (every block <= Lmax %d)\n", loads, res.Lmax)
	fmt.Println("all block counts balanced — no power-of-two restriction.")
}
