// Process mapping: place the processes of a communication graph onto
// the PEs of a hierarchical machine so that heavy communication stays on
// cheap links — in one streaming pass.
//
// The scenario is the paper's motivating workload: a large graph
// computation whose communication graph must be mapped onto a cluster
// organized as cores-per-processor : processors-per-node : nodes.
//
//	go run ./examples/processmapping
package main

import (
	"fmt"
	"log"
	"time"

	"oms"
)

func main() {
	// Communication graph: an RMAT social network, 500k processes.
	fmt.Println("generating communication graph...")
	g := oms.GenRMATCitation(500_000, 3_000_000, 7)
	fmt.Printf("n=%d m=%d\n\n", g.NumNodes(), g.NumEdges())

	// Machine: 4 cores per processor, 16 processors per node, 8 nodes
	// (k = 512 PEs). Messages between cores of one processor cost 1,
	// between processors of one node 10, between nodes 100 — the
	// configuration of the paper's experiments.
	top, err := oms.NewTopology("4:16:8", "1:10:100")
	if err != nil {
		log.Fatal(err)
	}
	k := top.Spec.K()
	fmt.Printf("topology 4:16:8 (k=%d PEs), distances 1:10:100\n\n", k)

	// Streaming OMS: the multi-section tree mirrors the machine, so the
	// node walk optimizes J implicitly.
	start := time.Now()
	omsRes, err := oms.MapGraph(g, top, oms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	omsTime := time.Since(start)

	// Flat Fennel ignores the hierarchy: it balances k blocks and maps
	// block b to PE b. This is what the paper compares against (no other
	// streaming process mapper exists).
	start = time.Now()
	fenRes, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerFennel, oms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fenTime := time.Since(start)

	// The offline recursive multi-section (IntMap's role): full-graph
	// access, best quality, highest cost.
	start = time.Now()
	offRes, err := oms.MapOffline(g, top, oms.OfflineMapOptions{SwapRounds: 3})
	if err != nil {
		log.Fatal(err)
	}
	offTime := time.Since(start)

	jOMS := omsRes.MappingCost(g, top)
	jFen := fenRes.MappingCost(g, top)
	jOff := offRes.MappingCost(g, top)
	fmt.Printf("%-22s J=%-12.0f time=%v\n", "streaming OMS:", jOMS, omsTime.Round(time.Millisecond))
	fmt.Printf("%-22s J=%-12.0f time=%v\n", "flat Fennel:", jFen, fenTime.Round(time.Millisecond))
	fmt.Printf("%-22s J=%-12.0f time=%v\n", "offline multi-section:", jOff, offTime.Round(time.Millisecond))
	fmt.Printf("\nOMS maps %.1f%% better than Fennel and runs %.1fx faster\n",
		(jFen/jOMS-1)*100, float64(fenTime)/float64(omsTime))
	fmt.Printf("offline quality gap: OMS is within %.2fx of the in-memory mapper\n", jOMS/jOff)

	// Where the improvement comes from: OMS pushes cut edges down to the
	// cheap levels (cores of one processor, distance 1) while Fennel's
	// blind block->PE identity leaves them on expensive links.
	fmt.Println("\ncut-edge weight by hierarchy level (L0 cheapest):")
	fmt.Printf("%-22s", "")
	for i, d := range top.Dist.D {
		fmt.Printf("  L%d(d=%-3g)", i, d)
	}
	fmt.Println()
	for _, row := range []struct {
		name string
		res  interface {
			LevelCuts(*oms.Graph, *oms.Topology) []float64
		}
	}{
		{"streaming OMS:", omsRes},
		{"flat Fennel:", fenRes},
		{"offline multi-section:", offRes},
	} {
		fmt.Printf("%-22s", row.name)
		for _, c := range row.res.LevelCuts(g, top) {
			fmt.Printf("  %-9.0f", c)
		}
		fmt.Println()
	}
}
