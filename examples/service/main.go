// Service client example: stream a graph into the omsd daemon over HTTP
// and read each node's permanent block back while the upload is still in
// flight — the paper's on-the-fly assignment consumed over the network,
// through the typed oms/client package.
//
// By default the example is self-contained: it starts an in-process omsd
// server on a loopback port, plays the client against it, and shuts it
// down. Point it at a real daemon with -addr:
//
//	go run ./cmd/omsd &
//	go run ./examples/service -addr localhost:8080
//
// -binary switches the transfer to the v2 binary frame protocol
// (application/x-oms-frame); the assignments are identical either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"oms"
	"oms/client"
	"oms/internal/service"
)

const (
	n         = 100_000
	k         = 64
	chunkSize = 4096
)

func main() {
	addr := flag.String("addr", "", "omsd address (empty = start one in-process)")
	binary := flag.Bool("binary", false, "use the v2 binary wire protocol instead of NDJSON")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		mgr := service.NewManager(service.Config{})
		defer mgr.Close()
		srv := httptest.NewServer(service.NewServer(mgr))
		defer srv.Close()
		base = srv.URL
		fmt.Printf("started in-process omsd at %s\n", base)
	}
	ctx := context.Background()
	cl := client.New(base, client.WithBinary(*binary))

	// The graph a real client would receive from its own pipeline; here a
	// Delaunay mesh from the paper's benchmark families.
	fmt.Printf("generating Delaunay graph, n=%d...\n", n)
	g := oms.GenDelaunay(n, 42)

	// Create a session declaring the stream's global stats and target.
	created, err := cl.Create(ctx, client.Spec{
		N: g.NumNodes(), M: g.NumEdges(),
		TotalNodeWeight: g.TotalNodeWeight(),
		TotalEdgeWeight: g.TotalEdgeWeight(),
		K:               k, Record: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	format := map[bool]string{true: "binary frames", false: "NDJSON"}[*binary]
	fmt.Printf("session %s created (lmax=%d, pushing %s)\n", created.ID, created.Lmax, format)

	// Push the nodes in chunks; each POST streams the chunk's permanent
	// assignments back.
	start := time.Now()
	parts := make([]int32, g.NumNodes())
	var assigned int
	nodes := make([]client.Node, 0, chunkSize)
	for lo := int32(0); lo < g.NumNodes(); lo += chunkSize {
		hi := min(lo+chunkSize, g.NumNodes())
		nodes = nodes[:0]
		for u := lo; u < hi; u++ {
			nodes = append(nodes, client.Node{U: u, Adj: g.Neighbors(u)})
		}
		as, err := cl.Push(ctx, created.ID, nodes)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range as {
			parts[a.U] = a.B
			assigned++
		}
	}
	fmt.Printf("streamed %d nodes in %v (%.0f nodes/s)\n",
		assigned, time.Since(start).Round(time.Millisecond),
		float64(assigned)/time.Since(start).Seconds())

	// Finish: the summary carries edge cut and imbalance because the
	// session records its stream.
	sum, err := cl.Finish(ctx, created.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished: assigned=%d edge_cut=%d imbalance=%.4f\n",
		sum.Assigned, *sum.EdgeCut, *sum.Imbalance)

	// Cross-check against the same run in-process: the service is the
	// same algorithm behind a network surface, so the cut matches the
	// pull-based library call exactly.
	res, err := oms.PartitionGraph(g, k, oms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process reference edge_cut=%d — %s\n", res.EdgeCut(g),
		map[bool]string{true: "identical", false: "MISMATCH"}[res.EdgeCut(g) == *sum.EdgeCut])
}
