// Service client example: stream a graph into the omsd daemon over HTTP
// and read each node's permanent block back while the upload is still in
// flight — the paper's on-the-fly assignment consumed over the network.
//
// By default the example is self-contained: it starts an in-process omsd
// server on a loopback port, plays the client against it, and shuts it
// down. Point it at a real daemon with -addr:
//
//	go run ./cmd/omsd &
//	go run ./examples/service -addr localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"oms"
	"oms/internal/service"
)

const (
	n         = 100_000
	k         = 64
	chunkSize = 4096
)

type pushNode struct {
	U   int32   `json:"u"`
	Adj []int32 `json:"adj"`
}

func main() {
	addr := flag.String("addr", "", "omsd address (empty = start one in-process)")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		mgr := service.NewManager(service.Config{})
		defer mgr.Close()
		srv := httptest.NewServer(service.NewServer(mgr))
		defer srv.Close()
		base = srv.URL
		fmt.Printf("started in-process omsd at %s\n", base)
	}

	// The graph a real client would receive from its own pipeline; here a
	// Delaunay mesh from the paper's benchmark families.
	fmt.Printf("generating Delaunay graph, n=%d...\n", n)
	g := oms.GenDelaunay(n, 42)

	// Create a session declaring the stream's global stats and target.
	create, err := json.Marshal(map[string]any{
		"n": g.NumNodes(), "m": g.NumEdges(),
		"total_node_weight": g.TotalNodeWeight(),
		"total_edge_weight": g.TotalEdgeWeight(),
		"k":                 k, "record": true,
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(create))
	if err != nil {
		log.Fatal(err)
	}
	var session struct {
		ID   string `json:"id"`
		Lmax int64  `json:"lmax"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&session); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("session %s created (lmax=%d)\n", session.ID, session.Lmax)

	// Push the nodes in chunks; each POST streams the chunk's permanent
	// assignments back as NDJSON.
	start := time.Now()
	parts := make([]int32, g.NumNodes())
	var assigned int
	for lo := int32(0); lo < g.NumNodes(); lo += chunkSize {
		hi := lo + chunkSize
		if hi > g.NumNodes() {
			hi = g.NumNodes()
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for u := lo; u < hi; u++ {
			if err := enc.Encode(pushNode{U: u, Adj: g.Neighbors(u)}); err != nil {
				log.Fatal(err)
			}
		}
		resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/nodes", base, session.ID),
			"application/x-ndjson", &buf)
		if err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 16<<20)
		for sc.Scan() {
			var a struct {
				U     int32  `json:"u"`
				B     int32  `json:"b"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
				log.Fatal(err)
			}
			if a.Error != "" {
				log.Fatalf("server rejected node: %s", a.Error)
			}
			parts[a.U] = a.B
			assigned++
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	fmt.Printf("streamed %d nodes in %v (%.0f nodes/s)\n",
		assigned, time.Since(start).Round(time.Millisecond),
		float64(assigned)/time.Since(start).Seconds())

	// Finish: the summary carries edge cut and imbalance because the
	// session records its stream.
	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%s/finish", base, session.ID),
		"application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		log.Fatal(err)
	}
	var sum struct {
		Assigned int32    `json:"assigned"`
		EdgeCut  *int64   `json:"edge_cut"`
		Balance  *float64 `json:"imbalance"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("finished: assigned=%d edge_cut=%d imbalance=%.4f\n",
		sum.Assigned, *sum.EdgeCut, *sum.Balance)

	// Cross-check against the same run in-process: the service is the
	// same algorithm behind a network surface, so the cut matches the
	// pull-based library call exactly.
	res, err := oms.PartitionGraph(g, k, oms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process reference edge_cut=%d — %s\n", res.EdgeCut(g),
		map[bool]string{true: "identical", false: "MISMATCH"}[res.EdgeCut(g) == *sum.EdgeCut])
}
