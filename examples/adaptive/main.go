// Adaptive quickstart: partition a stream whose size nobody declared.
// An open-ended (adaptive) session estimates n, m, and the total
// weights online, re-adapting Fennel's alpha and the per-block
// capacities as the projections ratchet; Finish reconciles against the
// true totals and — because this session retains its stream — repairs
// the balance with one reconcile pass at exact capacities.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"oms"
)

func main() {
	fmt.Println("generating graph...")
	g := oms.GenDelaunay(200_000, 42)
	fmt.Printf("n=%d m=%d (the session will not be told)\n\n", g.NumNodes(), g.NumEdges())

	// The declared-stats reference: everything known up front.
	decl, err := oms.NewSession(oms.SessionConfig{
		Stats: oms.StreamStats{
			N: g.NumNodes(), M: g.NumEdges(),
			TotalNodeWeight: g.TotalNodeWeight(), TotalEdgeWeight: g.TotalEdgeWeight(),
		},
		K: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	push := func(s *oms.Session) {
		for u := int32(0); u < g.NumNodes(); u++ {
			if _, err := s.Push(u, 1, g.Neighbors(u), nil); err != nil {
				log.Fatal(err)
			}
		}
	}
	push(decl)
	declRes, err := decl.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("declared: cut=%-8d imbalance=%.4f\n", declRes.EdgeCut(g), declRes.Imbalance(g))

	// The adaptive session: no stats at all. Record retains the stream,
	// so it runs with the optimistic retained headroom and Finish ends
	// with the reconcile pass.
	adpt, err := oms.NewSession(oms.SessionConfig{K: 256, Adaptive: true, Record: true})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	push(adpt)
	mid, _ := adpt.AdaptiveInfo()
	fmt.Printf("\nbefore finish: observed n=%d, projected n=%d (revision %d)\n",
		mid.Observed.N, mid.Estimated.N, mid.Revision)

	adptRes, err := adpt.Finish()
	if err != nil {
		log.Fatal(err)
	}
	info, _ := adpt.AdaptiveInfo()
	fmt.Printf("reconciled:    true n=%d m=%d, projection overshot n by %.1f%%\n",
		info.Observed.N, info.Observed.M, info.EstimateErrN*100)
	fmt.Printf("adaptive: cut=%-8d imbalance=%.4f  time=%v\n",
		adptRes.EdgeCut(g), adptRes.Imbalance(g), time.Since(start).Round(time.Millisecond))
	fmt.Printf("cut ratio adaptive/declared: %.3f\n",
		float64(adptRes.EdgeCut(g))/float64(declRes.EdgeCut(g)))
}
