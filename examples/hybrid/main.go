// Hybrid mapping: trade solution quality for speed by solving the cheap
// bottom layers of the multi-section with Hashing while Fennel handles
// the expensive top layers (paper §3.2, Theorem 3).
//
// The intuition: a cut edge between two cores of the same processor
// costs 1, between nodes it costs 100 — so precision matters at the top
// of the hierarchy and barely at the bottom. Hashing the bottom layers
// removes most of the scoring work (the bottom layers contain most of
// the tree) at a modest mapping-cost penalty.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"time"

	"oms"
)

func main() {
	fmt.Println("generating graph...")
	g := oms.GenRGG2D(500_000, 11)
	fmt.Printf("n=%d m=%d\n\n", g.NumNodes(), g.NumEdges())

	top, err := oms.NewTopology("4:8:16", "1:10:100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology 4:8:16 (k=%d), distances 1:10:100\n\n", top.Spec.K())
	fmt.Printf("%-28s %-10s %-12s %s\n", "configuration", "time", "J", "edge-cut")

	var baseJ, baseT float64
	for h := 0; h <= 3; h++ {
		start := time.Now()
		res, err := oms.MapGraph(g, top, oms.Options{HashLayers: h, Threads: 4})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		j := res.MappingCost(g, top)
		if h == 0 {
			baseJ, baseT = j, elapsed
		}
		label := fmt.Sprintf("h=%d", h)
		switch h {
		case 0:
			label += " (pure Fennel scoring)"
		case 3:
			label += " (all layers hashed)"
		default:
			label += fmt.Sprintf(" (bottom %d/3 hashed)", h)
		}
		fmt.Printf("%-28s %-10s %-12.0f %d   [J %+.1f%%, time %+.1f%%]\n",
			label,
			(time.Duration(elapsed * float64(time.Second))).Round(time.Millisecond).String(),
			j, res.EdgeCut(g),
			(j/baseJ-1)*100, (elapsed/baseT-1)*100)
	}

	fmt.Println("\nhigher h: faster, worse mapping — pick per deployment needs.")
}
