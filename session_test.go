package oms_test

import (
	"strings"
	"testing"

	"oms"
)

// pushWhole streams g through a session in natural node order, checking
// that every Push echoes the block the final result reports.
func pushWhole(t *testing.T, s *oms.Session, g *oms.Graph) []int32 {
	t.Helper()
	n := g.NumNodes()
	online := make([]int32, n)
	for u := int32(0); u < n; u++ {
		b, err := s.Push(u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u))
		if err != nil {
			t.Fatalf("push %d: %v", u, err)
		}
		online[u] = b
	}
	return online
}

func TestSessionMatchesPartition(t *testing.T) {
	g := oms.GenDelaunay(4000, 11)
	st := oms.StreamStats{
		N: g.NumNodes(), M: g.NumEdges(),
		TotalNodeWeight: g.TotalNodeWeight(), TotalEdgeWeight: g.TotalEdgeWeight(),
	}
	for _, opt := range []oms.Options{
		{},
		{Scorer: oms.ScorerLDG},
		{Scorer: oms.ScorerHashing, Seed: 99},
		{HashLayers: 1, Seed: 3},
	} {
		want, err := oms.PartitionGraph(g, 64, opt)
		if err != nil {
			t.Fatal(err)
		}
		s, err := oms.NewSession(oms.SessionConfig{Stats: st, K: 64, Options: opt})
		if err != nil {
			t.Fatal(err)
		}
		online := pushWhole(t, s, g)
		res, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if res.Lmax != want.Lmax {
			t.Fatalf("opt %+v: lmax %d, want %d", opt, res.Lmax, want.Lmax)
		}
		for u := range want.Parts {
			if online[u] != want.Parts[u] || res.Parts[u] != want.Parts[u] {
				t.Fatalf("opt %+v: node %d got %d/%d, pull-based Run got %d",
					opt, u, online[u], res.Parts[u], want.Parts[u])
			}
		}
	}
}

func TestSessionMatchesMap(t *testing.T) {
	g := oms.GenRGG2D(3000, 5)
	top := oms.MustTopology("4:4:4", "1:10:100")
	want, err := oms.MapGraph(g, top, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := oms.NewSession(oms.SessionConfig{
		Stats: oms.StreamStats{
			N: g.NumNodes(), M: g.NumEdges(),
			TotalNodeWeight: g.TotalNodeWeight(), TotalEdgeWeight: g.TotalEdgeWeight(),
		},
		Topology: top,
	})
	if err != nil {
		t.Fatal(err)
	}
	pushWhole(t, s, g)
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for u := range want.Parts {
		if res.Parts[u] != want.Parts[u] {
			t.Fatalf("node %d mapped to %d, pull-based Map got %d", u, res.Parts[u], want.Parts[u])
		}
	}
}

func TestSessionRestreamMatchesPullRestream(t *testing.T) {
	g := oms.GenGrid2D(50, 60, true)
	const passes = 2
	want, err := oms.Restream(oms.NewMemorySource(g), 16, nil, passes, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := oms.NewSession(oms.SessionConfig{
		Stats: oms.StreamStats{
			N: g.NumNodes(), M: g.NumEdges(),
			TotalNodeWeight: g.TotalNodeWeight(), TotalEdgeWeight: g.TotalEdgeWeight(),
		},
		K:      16,
		Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pushWhole(t, s, g)
	sealed, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	firstPass := append([]int32(nil), sealed.Parts...)
	res, err := s.Restream(passes)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want.Parts {
		if res.Parts[u] != want.Parts[u] {
			t.Fatalf("node %d: session restream %d, pull restream %d", u, res.Parts[u], want.Parts[u])
		}
	}
	// The sealed first-pass result must not alias the engine: restreaming
	// may not rewrite it.
	for u := range firstPass {
		if sealed.Parts[u] != firstPass[u] {
			t.Fatalf("restream mutated the sealed result at node %d", u)
		}
	}
}

func TestSessionDefaultsOmittedStats(t *testing.T) {
	g := oms.GenDelaunay(1000, 3)
	want, err := oms.PartitionGraph(g, 8, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only N and M declared: unit node weights and M edge weight are
	// implied, matching the unweighted pull source exactly.
	s, err := oms.NewSession(oms.SessionConfig{
		Stats: oms.StreamStats{N: g.NumNodes(), M: g.NumEdges()},
		K:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Lmax() != want.Lmax {
		t.Fatalf("defaulted stats give lmax %d, want %d", s.Lmax(), want.Lmax)
	}
	online := pushWhole(t, s, g)
	for u := range want.Parts {
		if online[u] != want.Parts[u] {
			t.Fatalf("node %d got %d, want %d", u, online[u], want.Parts[u])
		}
	}
	if _, err := oms.NewSession(oms.SessionConfig{
		Stats: oms.StreamStats{N: 4, M: -1}, K: 2,
	}); err == nil {
		t.Fatal("negative declared m accepted")
	}
}

func TestSessionRejectsBadPushes(t *testing.T) {
	s, err := oms.NewSession(oms.SessionConfig{
		Stats: oms.StreamStats{N: 4, M: 3, TotalNodeWeight: 4, TotalEdgeWeight: 3},
		K:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(0, 1, []int32{1}, nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		u    int32
		w    int32
		adj  []int32
		ew   []int32
		want string
	}{
		{"out of range", 4, 1, nil, nil, "outside declared range"},
		{"negative", -1, 1, nil, nil, "outside declared range"},
		{"bad neighbor", 1, 1, []int32{9}, nil, "neighbor 9"},
		{"zero weight", 1, 0, nil, nil, "non-positive weight"},
		{"weight mismatch", 1, 1, []int32{0}, []int32{1, 2}, "edge weights"},
		{"negative edge weight", 1, 1, []int32{0}, []int32{-5}, "non-positive edge weight"},
		{"edge budget overrun", 1, 1, []int32{0, 2, 3, 0, 2, 3}, nil, "edge budget"},
	}
	for _, c := range cases {
		if _, err := s.Push(c.u, c.w, c.adj, c.ew); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
	if got := s.Assigned(); got != 1 {
		t.Fatalf("rejected pushes counted: assigned %d, want 1", got)
	}
	// Retrying an assigned node is idempotent: same block, nothing
	// re-charged or re-counted.
	first, err := s.Push(0, 1, []int32{1}, nil)
	if err != nil {
		t.Fatalf("idempotent re-push: %v", err)
	}
	if again, err := s.Push(0, 1, nil, nil); err != nil || again != first {
		t.Fatalf("re-push gave (%d, %v), want (%d, nil)", again, err, first)
	}
	if got := s.Assigned(); got != 1 {
		t.Fatalf("re-push counted: assigned %d, want 1", got)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(1, 1, nil, nil); err == nil || !strings.Contains(err.Error(), "after Finish") {
		t.Fatalf("push after finish: got %v", err)
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("double finish accepted")
	}
	if _, err := s.Restream(1); err == nil || !strings.Contains(err.Error(), "Record") {
		t.Fatalf("restream without record: got %v", err)
	}
}

// batchWhole streams g through a session via PushBatch in batches of
// size bs (0 = the whole graph in one batch).
func batchWhole(t *testing.T, s *oms.Session, g *oms.Graph, bs int) []int32 {
	t.Helper()
	n := int(g.NumNodes())
	if bs <= 0 {
		bs = n
	}
	out := make([]int32, 0, n)
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		batch := make([]oms.Node, 0, hi-lo)
		for u := int32(lo); u < int32(hi); u++ {
			batch = append(batch, oms.Node{U: u, W: g.NodeWeight(u), Adj: g.Neighbors(u), EW: g.EdgeWeights(u)})
		}
		blocks, err := s.PushBatch(batch)
		if err != nil {
			t.Fatalf("batch [%d,%d): %v", lo, hi, err)
		}
		out = append(out, blocks...)
	}
	return out
}

// TestPushBatchSequentialParity: with Threads <= 1, PushBatch at any
// batch size is bit-identical to the same stream of Push calls.
func TestPushBatchSequentialParity(t *testing.T) {
	g := oms.GenDelaunay(3000, 17)
	st := oms.StreamStats{
		N: g.NumNodes(), M: g.NumEdges(),
		TotalNodeWeight: g.TotalNodeWeight(), TotalEdgeWeight: g.TotalEdgeWeight(),
	}
	ref, err := oms.NewSession(oms.SessionConfig{Stats: st, K: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := pushWhole(t, ref, g)
	for _, bs := range []int{1, 64, 0} {
		s, err := oms.NewSession(oms.SessionConfig{Stats: st, K: 32})
		if err != nil {
			t.Fatal(err)
		}
		got := batchWhole(t, s, g, bs)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("batch size %d: node %d got %d, sequential Push got %d", bs, u, got[u], want[u])
			}
		}
	}
}

// TestPushBatchParallelQuality: parallel batches assign every node,
// keep every block within the balance constraint (the §3.4 overshoot is
// closed by the CAS reserve for unit weights), and land an edge cut in
// the same regime as the sequential stream.
func TestPushBatchParallelQuality(t *testing.T) {
	g := oms.GenDelaunay(6000, 23)
	st := oms.StreamStats{
		N: g.NumNodes(), M: g.NumEdges(),
		TotalNodeWeight: g.TotalNodeWeight(), TotalEdgeWeight: g.TotalEdgeWeight(),
	}
	ref, err := oms.NewSession(oms.SessionConfig{Stats: st, K: 32})
	if err != nil {
		t.Fatal(err)
	}
	pushWhole(t, ref, g)
	seqRes, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}
	seqCut := seqRes.EdgeCut(g)

	for _, bs := range []int{64, 1024, 0} {
		s, err := oms.NewSession(oms.SessionConfig{Stats: st, K: 32, Options: oms.Options{Threads: 4}})
		if err != nil {
			t.Fatal(err)
		}
		if s.Workers() != 4 {
			t.Fatalf("workers %d, want 4", s.Workers())
		}
		batchWhole(t, s, g, bs)
		res, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for u, p := range res.Parts {
			if p < 0 {
				t.Fatalf("batch size %d: node %d unassigned", bs, u)
			}
		}
		if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		if cut := res.EdgeCut(g); cut > seqCut*3/2+64 {
			t.Fatalf("batch size %d: parallel cut %d too far above sequential %d", bs, cut, seqCut)
		}
	}
}

// TestPushBatchIdempotentAndAtomic: re-batching assigned nodes and
// duplicates within a batch change nothing; an invalid batch is
// rejected without applying any of it.
func TestPushBatchIdempotentAndAtomic(t *testing.T) {
	st := oms.StreamStats{N: 8, M: 8}
	s, err := oms.NewSession(oms.SessionConfig{Stats: st, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.PushBatch([]oms.Node{
		{U: 0, Adj: []int32{1}},
		{U: 1, Adj: []int32{0, 2}},
		{U: 1, Adj: []int32{0, 2}}, // duplicate within the batch
	})
	if err != nil {
		t.Fatal(err)
	}
	if first[1] != first[2] {
		t.Fatalf("duplicate got %d, first occurrence %d", first[2], first[1])
	}
	if got := s.Assigned(); got != 2 {
		t.Fatalf("assigned %d, want 2 (duplicate must not double-count)", got)
	}
	// A batch with one out-of-range node must be rejected atomically.
	before := s.Assigned()
	if _, err := s.PushBatch([]oms.Node{{U: 2, Adj: []int32{3}}, {U: 99}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if got := s.Assigned(); got != before {
		t.Fatalf("rejected batch assigned %d nodes", got-before)
	}
	// Re-pushing an assigned node returns its block unchanged.
	again, err := s.PushBatch([]oms.Node{{U: 0, Adj: []int32{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != first[0] {
		t.Fatalf("re-push moved node 0: %d -> %d", first[0], again[0])
	}
}

// TestPushAssignedReplaysExactly: replaying (node, block) decisions
// through PushAssigned reproduces the original session's state, and a
// later Finish returns identical parts.
func TestPushAssignedReplaysExactly(t *testing.T) {
	g := oms.GenDelaunay(2000, 31)
	st := oms.StreamStats{
		N: g.NumNodes(), M: g.NumEdges(),
		TotalNodeWeight: g.TotalNodeWeight(), TotalEdgeWeight: g.TotalEdgeWeight(),
	}
	orig, err := oms.NewSession(oms.SessionConfig{Stats: st, K: 16, Options: oms.Options{Threads: 2}})
	if err != nil {
		t.Fatal(err)
	}
	blocks := batchWhole(t, orig, g, 256)

	replay, err := oms.NewSession(oms.SessionConfig{Stats: st, K: 16, Options: oms.Options{Threads: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		b, err := replay.PushAssigned(u, g.NodeWeight(u), g.Neighbors(u), g.EdgeWeights(u), blocks[u])
		if err != nil {
			t.Fatalf("replay %d: %v", u, err)
		}
		if b != blocks[u] {
			t.Fatalf("replay %d: got %d, want %d", u, b, blocks[u])
		}
	}
	ws, rs := orig.ExportState(), replay.ExportState()
	if ws.EdgesSeen != rs.EdgesSeen {
		t.Fatalf("edgesSeen %d, want %d", rs.EdgesSeen, ws.EdgesSeen)
	}
	for i := range ws.Loads {
		if ws.Loads[i] != rs.Loads[i] {
			t.Fatalf("tree block %d load %d, want %d", i, rs.Loads[i], ws.Loads[i])
		}
	}
	for u := range ws.Parts {
		if ws.Parts[u] != rs.Parts[u] {
			t.Fatalf("node %d part %d, want %d", u, rs.Parts[u], ws.Parts[u])
		}
	}
}
