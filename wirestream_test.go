package oms

import (
	"path/filepath"
	"testing"
)

// TestWireStreamRoundTrip: a graph written as a wire-stream file and
// partitioned through NewWireSource produces exactly the in-memory
// result — the file is a faithful transport of the stream.
func TestWireStreamRoundTrip(t *testing.T) {
	g := GenDelaunay(2000, 11)
	path := filepath.Join(t.TempDir(), "g.omsw")
	if err := WriteWireFile(path, g); err != nil {
		t.Fatal(err)
	}

	src := NewWireSource(path)
	st, err := src.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.N != g.NumNodes() || st.M != g.NumEdges() {
		t.Fatalf("stats %+v, want n=%d m=%d", st, g.NumNodes(), g.NumEdges())
	}

	want, err := PartitionGraph(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Partition(src, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := range want.Parts {
		if want.Parts[u] != got.Parts[u] {
			t.Fatalf("node %d: wire-stream part %d, in-memory part %d", u, got.Parts[u], want.Parts[u])
		}
	}
}
