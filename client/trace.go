package client

import (
	"context"
	"net/http"

	"oms/internal/trace"
)

// TraceparentHeader is the W3C trace-context header every request
// carrying a trace context sends.
const TraceparentHeader = "traceparent"

// NewTraceparent mints a fresh W3C traceparent header value and returns
// it with its 32-hex trace id. A sampled traceparent tells the server
// to record the request's span tree (retrievable at
// GET /v1/traces/{traceID}); an unsampled one deterministically opts
// the request out of the server's head sampling.
func NewTraceparent(sampled bool) (header, traceID string) {
	tc := trace.NewContext(sampled)
	return tc.Traceparent(), tc.TraceID.String()
}

type traceparentKey struct{}

// ContextWithTraceparent returns a context that makes every client
// request issued under it carry the given traceparent header value —
// Create, Push, PushBatch, Finish, Refine, Result, all of them. An
// empty value removes propagation.
func ContextWithTraceparent(ctx context.Context, traceparent string) context.Context {
	return context.WithValue(ctx, traceparentKey{}, traceparent)
}

// traceparentFrom extracts a traceparent previously attached with
// ContextWithTraceparent, or "".
func traceparentFrom(ctx context.Context) string {
	tp, _ := ctx.Value(traceparentKey{}).(string)
	return tp
}

// injectTrace stamps the context's traceparent, if any, onto the
// outgoing request.
func injectTrace(ctx context.Context, req *http.Request) {
	if tp := traceparentFrom(ctx); tp != "" {
		req.Header.Set(TraceparentHeader, tp)
	}
}
