package client

import "fmt"

// Error is a typed API failure: the HTTP status, the stable
// machine-readable code from the uniform error body (the same `code`
// the conformance suite pins), and the human-readable message.
// Match with errors.Is against the exported sentinels — two Errors
// are equivalent when their codes agree.
type Error struct {
	Status  int    // HTTP status; 0 for in-band mid-stream errors
	Code    string // stable error class, e.g. "session_gone"
	Message string
}

func (e *Error) Error() string {
	switch {
	case e.Code != "" && e.Message != "":
		return fmt.Sprintf("oms: %s (%s)", e.Message, e.Code)
	case e.Code != "":
		return "oms: " + e.Code
	default:
		return "oms: " + e.Message
	}
}

// Is matches by error class, so errors.Is(err, client.ErrGone) holds
// for any response carrying the "session_gone" code.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code != "" && t.Code == e.Code
}

// Sentinel errors, one per error class of the API's versioned spec
// (the Errors column of the route table). Compare with errors.Is.
var (
	ErrBadRequest        = &Error{Code: "bad_request"}
	ErrSessionLimit      = &Error{Code: "session_limit"}
	ErrNotFound          = &Error{Code: "session_not_found"}
	ErrGone              = &Error{Code: "session_gone"}
	ErrFinished          = &Error{Code: "session_finished"}
	ErrNotFinished       = &Error{Code: "session_not_finished"}
	ErrOutOfRange        = &Error{Code: "node_out_of_range"}
	ErrEdgeBudget        = &Error{Code: "edge_budget_exceeded"}
	ErrStreamNotRetained = &Error{Code: "stream_not_retained"}
	ErrRefineActive      = &Error{Code: "refine_active"}
	ErrRefineNotFound    = &Error{Code: "refine_not_found"}
	ErrVersionNotFound   = &Error{Code: "version_not_found"}
	ErrUnsupportedMedia  = &Error{Code: "unsupported_media_type"}
	ErrMalformedFrame    = &Error{Code: "malformed_frame"}
	ErrDurability        = &Error{Code: "durability_failure"}
	ErrNotReady          = &Error{Code: "not_ready"}
)
