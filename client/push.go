package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"oms/internal/wire"
)

// Node is one pushed node: id, weight (0 means 1), neighbors, and
// optional parallel edge weights.
type Node struct {
	U   int32   `json:"u"`
	W   int32   `json:"w,omitempty"`
	Adj []int32 `json:"adj"`
	EW  []int32 `json:"ew,omitempty"`
}

// Assignment is one node's permanent block.
type Assignment struct {
	U int32 `json:"u"`
	B int32 `json:"b"`
}

// Push streams nodes through POST /v1/sessions/{id}/nodes and returns
// their assignments in push order. The transfer encoding follows
// WithBinary. On a mid-stream rejection the accepted prefix's
// assignments are returned alongside the error.
func (c *Client) Push(ctx context.Context, id string, nodes []Node) ([]Assignment, error) {
	return c.ingest(ctx, id, "nodes", nodes)
}

// PushBatch streams nodes through POST /v1/sessions/{id}/batch — the
// atomic, parallel-assignment ingest route.
func (c *Client) PushBatch(ctx context.Context, id string, nodes []Node) ([]Assignment, error) {
	return c.ingest(ctx, id, "batch", nodes)
}

// ingest encodes the nodes once and streams them to the session's
// node. In cluster mode the request is routed to the owner and retried
// through failover — but only on failures that provably never delivered
// a byte (dial errors) or were rejected before ingest began (404/503/
// wrong_node): once a server may have consumed part of the stream, a
// replay would re-assign nodes, so mid-stream breaks surface to the
// caller, who resumes from the session's authoritative assigned count.
func (c *Client) ingest(ctx context.Context, id, route string, nodes []Node) ([]Assignment, error) {
	var body bytes.Buffer
	var ct string
	if c.binary {
		ct = wire.MediaType
		buf := body.AvailableBuffer()
		for _, nd := range nodes {
			buf = appendCanonicalFrame(buf, nd)
		}
		body.Write(buf)
	} else {
		ct = "application/x-ndjson"
		enc := json.NewEncoder(&body)
		for _, nd := range nodes {
			if err := enc.Encode(nd); err != nil {
				return nil, err
			}
		}
	}
	var out []Assignment
	err := c.route(ctx, id, true, func(base string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			fmt.Sprintf("%s/v1/sessions/%s/%s", base, id, route), bytes.NewReader(body.Bytes()))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", ct)
		req.Header.Set("Accept", ct)
		injectTrace(ctx, req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return apiError(resp)
		}
		if c.binary {
			out, err = readWireAssignments(resp.Body, len(nodes))
		} else {
			out, err = readJSONAssignments(resp.Body, len(nodes))
		}
		return err
	})
	return out, err
}

// appendCanonicalFrame encodes nd exactly as the server's NDJSON shim
// canonicalizes it — zero weight is weight one, an empty edge-weight
// list is none — so what this client sends is byte-for-byte what the
// WAL records.
func appendCanonicalFrame(buf []byte, nd Node) []byte {
	w := nd.W
	if w == 0 {
		w = 1
	}
	ew := nd.EW
	if len(ew) == 0 {
		ew = nil
	}
	return wire.AppendNodeFrame(buf, nd.U, w, nd.Adj, ew)
}

// readWireAssignments drains a binary reply stream: TypeAssign frames
// carry assignments, a TypeError frame ends the stream with an in-band
// error (the assignments before it stand).
func readWireAssignments(r io.Reader, hint int) ([]Assignment, error) {
	out := make([]Assignment, 0, hint)
	rd := wire.NewReader(r)
	var us, bs []int32
	for {
		payload, _, err := rd.NextFrame()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		switch payload[0] {
		case wire.TypeAssign:
			us, bs, err = wire.DecodeAssignPayload(payload, us[:0], bs[:0])
			if err != nil {
				return out, err
			}
			for i := range us {
				out = append(out, Assignment{U: us[i], B: bs[i]})
			}
		case wire.TypeError:
			msg, err := wire.DecodeErrorPayload(payload)
			if err != nil {
				return out, err
			}
			return out, &Error{Message: msg}
		default:
			return out, fmt.Errorf("oms: unexpected reply frame type %d", payload[0])
		}
		rd.Arena.Reset()
	}
}

// readJSONAssignments drains an NDJSON reply stream; a line with an
// "error" field ends the stream with an in-band error.
func readJSONAssignments(r io.Reader, hint int) ([]Assignment, error) {
	out := make([]Assignment, 0, hint)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line struct {
			U     int32  `json:"u"`
			B     int32  `json:"b"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return out, err
		}
		if line.Error != "" {
			return out, &Error{Message: line.Error}
		}
		out = append(out, Assignment{U: line.U, B: line.B})
	}
	return out, sc.Err()
}

// Result fetches an assignment vector. version is "" for the streamed
// partition, "N", "latest", or "best" for refined versions. With
// WithBinary the transfer is one binary result frame instead of JSON.
func (c *Client) Result(ctx context.Context, id, version string) (Result, error) {
	path := "/v1/sessions/" + id + "/result"
	if version != "" {
		path += "?version=" + version
	}
	if !c.binary {
		var out Result
		err := c.doJSON(ctx, http.MethodGet, path, nil, &out)
		return out, err
	}
	var out Result
	err := c.route(ctx, id, false, func(base string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", wire.MediaType)
		injectTrace(ctx, req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return apiError(resp)
		}
		rd := wire.NewReader(resp.Body)
		payload, _, err := rd.NextFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		wres, err := wire.DecodeResultPayload(payload)
		if err != nil {
			return err
		}
		out = Result{
			ID: id, Version: wres.Version, Pass: wres.Pass, K: wres.K,
			Lmax: wres.Lmax, EdgeCut: wres.EdgeCut, Parts: wres.Parts,
		}
		return nil
	})
	return out, err
}
