package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"oms/internal/service"
)

func testServer(t *testing.T) string {
	t.Helper()
	mgr := service.NewManager(service.Config{})
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(service.NewServer(mgr))
	t.Cleanup(srv.Close)
	return srv.URL
}

// pathNodes is a 4-node path graph stream.
func pathNodes() []Node {
	return []Node{
		{U: 0, Adj: []int32{1}},
		{U: 1, Adj: []int32{0, 2}},
		{U: 2, Adj: []int32{1, 3}},
		{U: 3, Adj: []int32{2}},
	}
}

// TestLifecycleBothFormats drives the whole session lifecycle through
// the client in each wire format and checks the answers agree: the
// binary protocol is a transfer encoding, not a different API.
func TestLifecycleBothFormats(t *testing.T) {
	url := testServer(t)
	ctx := context.Background()

	var results [2]Result
	for i, binary := range []bool{false, true} {
		c := New(url, WithBinary(binary))
		created, err := c.Create(ctx, Spec{N: 4, M: 3, K: 2, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if created.ID == "" || created.K != 2 {
			t.Fatalf("create: %+v", created)
		}

		as, err := c.Push(ctx, created.ID, pathNodes()[:2])
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != 2 || as[0].U != 0 || as[1].U != 1 {
			t.Fatalf("push assignments: %+v", as)
		}
		if as, err = c.PushBatch(ctx, created.ID, pathNodes()[2:]); err != nil {
			t.Fatal(err)
		}
		if len(as) != 2 {
			t.Fatalf("batch assignments: %+v", as)
		}

		st, err := c.Status(ctx, created.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Assigned != 4 || st.Finished {
			t.Fatalf("status: %+v", st)
		}

		sum, err := c.Finish(ctx, created.ID)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Assigned != 4 || sum.EdgeCut == nil {
			t.Fatalf("finish: %+v", sum)
		}

		res, err := c.Result(ctx, created.ID, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Parts) != 4 || res.K != 2 {
			t.Fatalf("result: %+v", res)
		}
		results[i] = res

		if err := c.Delete(ctx, created.ID); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Status(ctx, created.ID); !errors.Is(err, ErrGone) {
			t.Fatalf("status after delete: %v, want ErrGone", err)
		}
	}
	for u := range results[0].Parts {
		if results[0].Parts[u] != results[1].Parts[u] {
			t.Fatalf("partitions differ between formats at node %d: %v vs %v",
				u, results[0].Parts, results[1].Parts)
		}
	}
	if *results[0].EdgeCut != *results[1].EdgeCut {
		t.Fatalf("edge cut differs: %d vs %d", *results[0].EdgeCut, *results[1].EdgeCut)
	}
}

// TestSentinelErrors: every failure surfaces as a typed *Error whose
// class matches the conformance table's code column.
func TestSentinelErrors(t *testing.T) {
	url := testServer(t)
	ctx := context.Background()
	for _, binary := range []bool{false, true} {
		c := New(url, WithBinary(binary))

		if _, err := c.Status(ctx, "s0-deadbeef"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("binary=%v unknown status: %v, want ErrNotFound", binary, err)
		}
		if _, err := c.Push(ctx, "s0-deadbeef", pathNodes()); !errors.Is(err, ErrNotFound) {
			t.Fatalf("binary=%v push unknown: %v, want ErrNotFound", binary, err)
		}

		created, err := c.Create(ctx, Spec{N: 4, M: 3, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Result(ctx, created.ID, ""); !errors.Is(err, ErrNotFinished) {
			t.Fatalf("binary=%v result unfinished: %v, want ErrNotFinished", binary, err)
		}
		if _, err := c.Push(ctx, created.ID, []Node{{U: 99}}); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("binary=%v push out-of-range: %v, want ErrOutOfRange", binary, err)
		}
		if _, err := c.Create(ctx, Spec{N: 4}); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("binary=%v create no target: %v, want ErrBadRequest", binary, err)
		}
	}
}

// TestMidStreamError: a rejection after committed nodes arrives
// in-band, with the accepted prefix's assignments intact.
func TestMidStreamError(t *testing.T) {
	url := testServer(t)
	ctx := context.Background()
	for _, binary := range []bool{false, true} {
		c := New(url, WithBinary(binary))
		created, err := c.Create(ctx, Spec{N: 4, M: 3, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		nodes := append(pathNodes()[:2], Node{U: 99})
		as, err := c.Push(ctx, created.ID, nodes)
		if err == nil {
			t.Fatalf("binary=%v push with bad tail succeeded", binary)
		}
		var ce *Error
		if !errors.As(err, &ce) {
			t.Fatalf("binary=%v in-band error type: %v", binary, err)
		}
		if len(as) != 2 {
			t.Fatalf("binary=%v accepted prefix: %+v", binary, as)
		}
	}
}
