// Package client is the typed Go client for the omsd HTTP API. It
// wraps the versioned surface (create / push / batch / finish / refine
// / result / status / delete) behind one struct, negotiates the wire
// format per request — NDJSON by default, the v2 binary frame protocol
// with WithBinary(true) — and turns every failure into a typed *Error
// whose Code matches the API's stable error classes, so callers branch
// with errors.Is(err, client.ErrGone) instead of matching status codes
// by hand.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to one omsd server — or, with WithCluster, to a sharded
// omsd cluster, routing each request to the session's owner node. The
// zero value is not usable; use New. A Client is safe for concurrent
// use.
type Client struct {
	base   string
	hc     *http.Client
	binary bool
	router *router // nil outside cluster mode
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport tuning, test servers).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithBinary switches ingest and result transfer to the v2 binary
// frame protocol (application/x-oms-frame): varint-delta node frames
// up, binary assignment frames back. Everything else stays JSON.
func WithBinary(on bool) Option {
	return func(c *Client) { c.binary = on }
}

// New returns a Client for the server at baseURL
// (e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Spec declares a new session — the JSON body of POST /v1/sessions.
type Spec struct {
	N               int32   `json:"n"`
	M               int64   `json:"m"`
	Adaptive        bool    `json:"adaptive,omitempty"`
	TotalNodeWeight int64   `json:"total_node_weight,omitempty"`
	TotalEdgeWeight int64   `json:"total_edge_weight,omitempty"`
	K               int32   `json:"k,omitempty"`
	Topology        string  `json:"topology,omitempty"`
	Distances       string  `json:"distances,omitempty"`
	Scorer          string  `json:"scorer,omitempty"`
	Epsilon         float64 `json:"epsilon,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
	Record          bool    `json:"record,omitempty"`
	Threads         int     `json:"threads,omitempty"`
	TTLSeconds      int     `json:"ttl_seconds,omitempty"`
}

// Created is the create response.
type Created struct {
	ID       string `json:"id"`
	K        int32  `json:"k"`
	N        int32  `json:"n"`
	Adaptive bool   `json:"adaptive"`
	Lmax     int64  `json:"lmax"`
}

// Summary is a session's status (GET /v1/sessions/{id}) and the finish
// response; cut and imbalance are present only on recorded sessions.
// Adaptive is raw because the two endpoints shape it differently: a
// status reports `true` for open-ended sessions, a finish summary
// reports the estimator's reconcile object.
type Summary struct {
	ID        string          `json:"id"`
	K         int32           `json:"k"`
	N         int32           `json:"n"`
	Assigned  int32           `json:"assigned"`
	Lmax      int64           `json:"lmax"`
	Finished  bool            `json:"finished"`
	EdgeCut   *int64          `json:"edge_cut"`
	Imbalance *float64        `json:"imbalance"`
	Adaptive  json.RawMessage `json:"adaptive,omitempty"`
}

// Result is an assignment vector (GET /v1/sessions/{id}/result).
type Result struct {
	ID      string  `json:"id"`
	Version int32   `json:"version"`
	Pass    int32   `json:"pass"`
	K       int32   `json:"k"`
	Lmax    int64   `json:"lmax"`
	EdgeCut *int64  `json:"edge_cut"`
	Parts   []int32 `json:"parts"`
}

// Create opens a session.
func (c *Client) Create(ctx context.Context, spec Spec) (Created, error) {
	var out Created
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions", spec, &out)
	return out, err
}

// Status reads one session's status.
func (c *Client) Status(ctx context.Context, id string) (Summary, error) {
	var out Summary
	err := c.doJSON(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &out)
	return out, err
}

// List enumerates live sessions.
func (c *Client) List(ctx context.Context) ([]Summary, error) {
	var out []Summary
	err := c.doJSON(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// Finish seals the session and returns its summary.
func (c *Client) Finish(ctx context.Context, id string) (Summary, error) {
	var out Summary
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+id+"/finish", struct{}{}, &out)
	return out, err
}

// Refine queues a background restream refinement pass.
func (c *Client) Refine(ctx context.Context, id string, passes, threads int) error {
	body := map[string]int{}
	if passes > 0 {
		body["passes"] = passes
	}
	if threads > 0 {
		body["threads"] = threads
	}
	return c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+id+"/refine", body, nil)
}

// Delete drops the session.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// doJSON runs one JSON request/response cycle, mapping non-2xx to a
// typed *Error. In cluster mode the request is routed to the owning
// node and retried through failover (see route); the body is marshaled
// once so every attempt replays identical bytes.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return err
		}
	}
	return c.route(ctx, sessionIDFromPath(path), method != http.MethodGet, func(base string) error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		injectTrace(ctx, req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return apiError(resp)
		}
		if out == nil {
			_, err := io.Copy(io.Discard, resp.Body)
			return err
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// apiError decodes the uniform {"error","code"} body into an *Error.
// The body is always consumed, so the connection can be reused.
func apiError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	_, _ = io.Copy(io.Discard, resp.Body)
	var eb struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(raw, &eb) == nil && (eb.Code != "" || eb.Error != "") {
		return &Error{Status: resp.StatusCode, Code: eb.Code, Message: eb.Error}
	}
	return &Error{Status: resp.StatusCode, Message: fmt.Sprintf("http %d: %.200s", resp.StatusCode, raw)}
}
