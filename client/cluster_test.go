package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"oms/internal/ring"
)

// tableHandler serves a two-member routing table naming the given
// addresses, plus a status endpoint that records hits.
func clusterStub(t *testing.T, self string, hits *atomic.Int64) (*httptest.Server, func(peers map[string]string)) {
	t.Helper()
	var table atomic.Value // map[string]string id -> addr
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		peers, _ := table.Load().(map[string]string)
		doc := map[string]any{"enabled": true, "self": self, "vnodes": 64}
		var members []map[string]any
		for id, addr := range peers {
			members = append(members, map[string]any{"id": id, "addr": addr, "alive": true})
		}
		doc["members"] = members
		json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprintf(w, `{"id":%q,"assigned":0}`, r.PathValue("id"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, func(peers map[string]string) { table.Store(peers) }
}

// TestClusterRoutingKeyed: session-keyed requests go straight to the
// ring owner's node, computed from the fetched table — the same ring
// the server builds.
func TestClusterRoutingKeyed(t *testing.T) {
	var hitsA, hitsB atomic.Int64
	srvA, setA := clusterStub(t, "n1", &hitsA)
	srvB, setB := clusterStub(t, "n2", &hitsB)
	peers := map[string]string{"n1": srvA.URL, "n2": srvB.URL}
	setA(peers)
	setB(peers)

	rg := ring.NewRing([]string{"n1", "n2"}, 64)
	ids := map[string]string{} // node -> a session id it owns
	for i := 0; len(ids) < 2; i++ {
		id := fmt.Sprintf("s%d-%08x", i, i)
		ids[rg.Owner(id)] = id
	}

	cl := New(srvA.URL, WithCluster(srvA.URL))
	ctx := context.Background()
	if _, err := cl.Status(ctx, ids["n1"]); err != nil {
		t.Fatal(err)
	}
	if hitsA.Load() != 1 || hitsB.Load() != 0 {
		t.Fatalf("n1-owned id hit A=%d B=%d, want 1/0", hitsA.Load(), hitsB.Load())
	}
	if _, err := cl.Status(ctx, ids["n2"]); err != nil {
		t.Fatal(err)
	}
	if hitsB.Load() != 1 {
		t.Fatalf("n2-owned id did not reach node B (A=%d B=%d)", hitsA.Load(), hitsB.Load())
	}
}

// TestClusterFailoverRetry: a 404 session_not_found retries through
// table refreshes until the replica finishes promoting — the client
// rides out the failover window instead of surfacing it.
func TestClusterFailoverRetry(t *testing.T) {
	var promoted atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"enabled":true,"self":"n1","vnodes":64,"members":[{"id":"n1","addr":%q,"alive":true}]}`, "http://"+r.Host)
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !promoted.Load() {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"no such session","code":"session_not_found"}`)
			return
		}
		fmt.Fprint(w, `{"id":"s0-0","assigned":7}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	time.AfterFunc(300*time.Millisecond, func() { promoted.Store(true) })

	cl := New(srv.URL, WithCluster(srv.URL))
	st, err := cl.Status(context.Background(), "s0-0")
	if err != nil {
		t.Fatalf("status did not ride out the failover window: %v", err)
	}
	if st.Assigned != 7 {
		t.Fatalf("assigned = %d, want 7", st.Assigned)
	}
}

// TestClusterDeadSeed: with the first seed down, the table refresh
// falls through to the next seed and requests still route.
func TestClusterDeadSeed(t *testing.T) {
	var hits atomic.Int64
	srv, set := clusterStub(t, "n1", &hits)
	set(map[string]string{"n1": srv.URL})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	cl := New(dead, WithCluster(dead, srv.URL))
	if _, err := cl.Status(context.Background(), "s0-0"); err != nil {
		t.Fatalf("status via surviving seed: %v", err)
	}
	if hits.Load() == 0 {
		t.Fatal("request never reached the live node")
	}
}

func TestRetryablePolicy(t *testing.T) {
	cases := []struct {
		err      error
		mutating bool
		want     bool
	}{
		{&Error{Status: 404, Code: "session_not_found"}, true, true},
		{&Error{Status: 404, Code: "session_not_found"}, false, true},
		{&Error{Status: 410, Code: "session_gone"}, false, false},
		{&Error{Status: 503, Code: "not_ready"}, true, true},
		{&Error{Status: 409, Code: "wrong_node"}, true, true},
		{&Error{Message: "mid-stream rejection"}, true, false}, // in-band: ingest began
		{&net.OpError{Op: "dial", Err: fmt.Errorf("refused")}, true, true},
		{&net.OpError{Op: "read", Err: fmt.Errorf("reset")}, true, false}, // may have committed
		{&net.OpError{Op: "read", Err: fmt.Errorf("reset")}, false, true},
	}
	for i, c := range cases {
		if got := retryable(c.err, c.mutating); got != c.want {
			t.Errorf("case %d (%v, mutating=%v): retryable=%v, want %v", i, c.err, c.mutating, got, c.want)
		}
	}
}

func TestSessionIDFromPath(t *testing.T) {
	cases := map[string]string{
		"/v1/sessions":                     "",
		"/v1/sessions/s1-ab":               "s1-ab",
		"/v1/sessions/s1-ab/nodes":         "s1-ab",
		"/v1/sessions/s1-ab/result?v=best": "s1-ab",
		"/v1/cluster":                      "",
	}
	for path, want := range cases {
		if got := sessionIDFromPath(path); got != want {
			t.Errorf("sessionIDFromPath(%q) = %q, want %q", path, got, want)
		}
	}
}
