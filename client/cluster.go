package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"oms/internal/ring"
)

// Routing knobs. The retry budget is sized to cover a full failover:
// probe-based death detection (FailThreshold x ProbeInterval at the
// server's defaults) plus replica promotion, with room to spare on a
// loaded machine.
const (
	routeBudget  = 15 * time.Second
	routeBackoff = 150 * time.Millisecond
	tableTTL     = 2 * time.Second
)

// WithCluster points the Client at a multi-node omsd cluster. targets
// are base URLs of any subset of the members (one is enough; more seed
// URLs survive more failures). The client fetches the routing table
// from GET /v1/cluster, rebuilds the server's consistent-hash ring, and
// sends each session-keyed request directly to the session's owner;
// unkeyed requests (create, list) round-robin over live members.
//
// Routing also arms failover retries: requests that fail in ways that
// indicate a stale table or a mid-failover window — connection refused,
// a wrong_node redirect, 503 while a node recovers, or 404
// session_not_found while a replica is being promoted — are retried
// against a refreshed table for up to routeBudget. Mutations are only
// retried when the failed attempt provably never reached a server
// (a dial error), so a lost-response commit is never replayed.
func WithCluster(targets ...string) Option {
	return func(c *Client) {
		r := &router{}
		for _, t := range targets {
			if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
				r.seeds = append(r.seeds, t)
			}
		}
		if len(r.seeds) == 0 {
			return
		}
		c.base = r.seeds[0]
		c.router = r
	}
}

// router caches one fetch of the cluster routing table: the rebuilt
// ring plus the live members' base URLs. It is nil on non-cluster
// clients; all methods are safe for concurrent use.
type router struct {
	seeds []string

	mu      sync.Mutex
	ring    *ring.Ring        // nil until fetched, or when the table says enabled:false
	addrs   map[string]string // live member id -> base URL
	order   []string          // live member ids, sorted (round-robin domain)
	fetched time.Time
	rr      int
}

// tableDoc mirrors the subset of the GET /v1/cluster document routing
// needs (internal/cluster.TableDoc is the producer).
type tableDoc struct {
	Enabled bool `json:"enabled"`
	Vnodes  int  `json:"vnodes"`
	Members []struct {
		ID    string `json:"id"`
		Addr  string `json:"addr"`
		Alive bool   `json:"alive"`
	} `json:"members"`
}

// baseFor picks the base URL for one attempt: the ring owner's address
// for a session-keyed request, a round-robin pick otherwise. A missing
// or stale table is refreshed first; if no member can serve the table
// the seeds themselves are rotated through.
func (r *router) baseFor(ctx context.Context, hc *http.Client, id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if time.Since(r.fetched) > tableTTL {
		r.refreshLocked(ctx, hc)
	}
	if id != "" && r.ring != nil {
		if addr := r.addrs[r.ring.Owner(id)]; addr != "" {
			return addr
		}
	}
	if len(r.order) > 0 {
		r.rr++
		return r.addrs[r.order[r.rr%len(r.order)]]
	}
	r.rr++
	return r.seeds[r.rr%len(r.seeds)]
}

// invalidate drops the cached table so the next attempt refetches it —
// called after a routing-shaped failure.
func (r *router) invalidate() {
	r.mu.Lock()
	r.fetched = time.Time{}
	r.mu.Unlock()
}

// refreshLocked refetches the routing table from the first seed that
// answers. On total failure the stale cache (possibly empty) stands and
// the caller falls back to seed rotation.
func (r *router) refreshLocked(ctx context.Context, hc *http.Client) {
	for i := 0; i < len(r.seeds); i++ {
		seed := r.seeds[(r.rr+i)%len(r.seeds)]
		doc, err := fetchTable(ctx, hc, seed)
		if err != nil {
			continue
		}
		r.fetched = time.Now()
		r.addrs = map[string]string{}
		r.order = nil
		if !doc.Enabled {
			// Single-node server: no ring, route everything at the seed.
			r.ring = nil
			r.addrs[""] = seed
			r.order = []string{""}
			return
		}
		var live []string
		for _, m := range doc.Members {
			if m.Alive && m.Addr != "" {
				live = append(live, m.ID)
				r.addrs[m.ID] = strings.TrimRight(m.Addr, "/")
			}
		}
		r.ring = ring.NewRing(live, doc.Vnodes)
		r.order = r.ring.Nodes()
		return
	}
}

func fetchTable(ctx context.Context, hc *http.Client, base string) (*tableDoc, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("oms: %s/v1/cluster: %s", base, resp.Status)
	}
	var doc tableDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// route runs fn against the right base URL for the request, retrying
// routing-shaped failures through table refreshes. id is the session
// the request is keyed on ("" for unkeyed), mutating guards the retry
// policy: a mutation is only retried when the attempt provably never
// reached a server.
func (c *Client) route(ctx context.Context, id string, mutating bool, fn func(base string) error) error {
	if c.router == nil {
		return fn(c.base)
	}
	deadline := time.Now().Add(routeBudget)
	for {
		err := fn(c.router.baseFor(ctx, c.hc, id))
		if err == nil || !retryable(err, mutating) || ctx.Err() != nil || time.Now().After(deadline) {
			return err
		}
		c.router.invalidate()
		select {
		case <-ctx.Done():
			return err
		case <-time.After(routeBackoff):
		}
	}
}

// retryable classifies one failed attempt. Typed API errors retry only
// in the failover window: session_not_found while the replica promotes,
// 503 while a rejoining node recovers, and wrong_node hints from a
// stale table. Transport errors retry freely on reads; on mutations
// only a dial failure is safe — anything later may have committed
// server-side with the response lost, and replaying an ingest would
// corrupt the session's stream.
func retryable(err error, mutating bool) bool {
	var ae *Error
	if errors.As(err, &ae) {
		switch {
		case ae.Status == http.StatusNotFound && ae.Code == "session_not_found":
			return true
		case ae.Status == http.StatusServiceUnavailable:
			return true
		case ae.Status == http.StatusTemporaryRedirect || ae.Code == "wrong_node":
			return true
		}
		return false
	}
	if !mutating {
		return true
	}
	return isDialError(err)
}

// isDialError reports whether err happened while connecting — before a
// single request byte reached a server.
func isDialError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// sessionIDFromPath extracts the session id a /v1 path is keyed on, or
// "" for unkeyed paths (create, list, /v1/cluster).
func sessionIDFromPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
