package oms

import (
	"bufio"
	"os"

	"oms/internal/gen"
	"oms/internal/graph"
	"oms/internal/graphio"
	"oms/internal/stream"
)

// Graph is an undirected graph in compressed-sparse-row form: no self
// loops, no parallel edges, int32 node weights, positive int32 edge
// weights (nil weight slices mean all ones).
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph; it symmetrizes input,
// drops self loops and merges parallel edges by summing their weights.
type Builder = graph.Builder

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int32) *Builder { return graph.NewBuilder(n) }

// FromAdjacency builds a Graph from plain adjacency lists (unit weights).
func FromAdjacency(lists [][]int32) *Graph { return graph.FromAdjacency(lists) }

// MemorySource streams an in-memory graph in natural node order. It is
// restartable, so it also serves multi-pass restreaming.
type MemorySource = stream.Memory

// NewMemorySource wraps g as a streaming source.
func NewMemorySource(g *Graph) *MemorySource { return stream.NewMemory(g) }

// DiskSource streams a METIS-format graph file without loading it into
// memory: the streaming partitioners then run in O(n + k) memory total,
// the regime the paper targets.
type DiskSource = stream.Disk

// NewDiskSource streams the METIS file at path.
func NewDiskSource(path string) *DiskSource { return stream.NewDisk(path) }

// ReadMetisFile loads a whole METIS-format graph into memory.
func ReadMetisFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ReadMetis(bufio.NewReaderSize(f, 1<<20))
}

// ReadEdgeListFile loads a SNAP-style edge list ("u v [w]" per line,
// '#'/'%' comments, arbitrary node ids): the format the paper's
// benchmark instances are distributed in before conversion. Ids are
// compacted to 0..n-1 in first-appearance order (preserving the file's
// stream locality); the returned map translates original ids.
func ReadEdgeListFile(path string) (*Graph, map[int64]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return graphio.ReadEdgeList(bufio.NewReaderSize(f, 1<<20))
}

// WriteMetisFile writes g in METIS format (the paper's vertex-stream
// format: header "n m", one adjacency line per node, 1-based ids).
func WriteMetisFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := graphio.WriteMetis(w, g); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// The Gen* functions are seeded synthetic graph generators covering the
// instance families of the paper's benchmark set (Table 1); they back the
// reproduction experiments and make the examples self-contained. All are
// deterministic for a fixed seed.

// GenRGG2D generates a random geometric graph: n points in the unit
// square, edges below Euclidean distance 0.55*sqrt(ln n / n) (the paper's
// rggX construction). Nodes are emitted in a spatially sorted order.
func GenRGG2D(n int32, seed uint64) *Graph { return gen.RandomGeometric(n, 0.55, seed) }

// GenDelaunay generates the Delaunay triangulation of n random points in
// the unit square (the paper's delX construction).
func GenDelaunay(n int32, seed uint64) *Graph { return gen.Delaunay(n, seed) }

// GenGrid2D generates a rows x cols mesh; diag adds one diagonal per
// cell, giving the connectivity character of FEM triangle meshes.
func GenGrid2D(rows, cols int32, diag bool) *Graph { return gen.Grid2D(rows, cols, diag) }

// GenGrid3D generates an x*y*z hexahedral mesh.
func GenGrid3D(x, y, z int32) *Graph { return gen.Grid3D(x, y, z) }

// GenRMATSocial generates an RMAT graph with the skewed parameters of
// social networks and web crawls (heavy-tailed degrees, weak locality).
func GenRMATSocial(n int32, m int64, seed uint64) *Graph {
	return gen.RMAT(n, m, gen.SocialRMAT, seed)
}

// GenRMATCitation generates an RMAT graph with milder skew, matching
// citation and co-purchasing networks.
func GenRMATCitation(n int32, m int64, seed uint64) *Graph {
	return gen.RMAT(n, m, gen.CitationRMAT, seed)
}

// GenBarabasiAlbert generates a preferential-attachment graph where each
// new node attaches deg edges.
func GenBarabasiAlbert(n, deg int32, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, deg, seed)
}

// GenWattsStrogatz generates a ring lattice with kHalf neighbors per side
// and rewiring probability beta: mostly local wiring with few long links,
// the connectivity character of circuits.
func GenWattsStrogatz(n, kHalf int32, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, kHalf, beta, seed)
}

// GenRoadLike generates a bounded-degree planar-ish network with the
// character of road graphs: long paths, tiny separators.
func GenRoadLike(n int32, avgDeg float64, seed uint64) *Graph {
	return gen.RoadLike(n, avgDeg, seed)
}

// GenErdosRenyi generates a uniform random graph with n nodes and about
// m edges (unstructured control instance).
func GenErdosRenyi(n int32, m int64, seed uint64) *Graph {
	return gen.ErdosRenyi(n, m, seed)
}
