package oms_test

import (
	"os"
	"path/filepath"
	"testing"

	"oms"
)

func TestPartitionGraphBalancedAllK(t *testing.T) {
	g := oms.GenDelaunay(5000, 1)
	for _, k := range []int32{2, 5, 16, 64, 257} {
		res, err := oms.PartitionGraph(g, k, oms.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.K != k {
			t.Fatalf("k=%d: result says %d", k, res.K)
		}
		if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for _, p := range res.Parts {
			if p < 0 || p >= k {
				t.Fatalf("k=%d: block %d out of range", k, p)
			}
		}
	}
}

func TestPartitionBeatsHashing(t *testing.T) {
	g := oms.GenRGG2D(8000, 3)
	k := int32(64)
	omsRes, err := oms.PartitionGraph(g, k, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hashRes, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerHashing, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if omsRes.EdgeCut(g)*2 >= hashRes.EdgeCut(g) {
		t.Fatalf("nh-OMS cut %d not clearly below Hashing %d",
			omsRes.EdgeCut(g), hashRes.EdgeCut(g))
	}
}

func TestMapImprovesOverFlatFennel(t *testing.T) {
	// The paper's headline: OMS computes better process mappings than
	// Fennel, which ignores the hierarchy.
	g := oms.GenRGG2D(8000, 5)
	top := oms.MustTopology("4:8:4", "1:10:100")
	mapRes, err := oms.MapGraph(g, top, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fenRes, err := oms.PartitionOnePass(oms.NewMemorySource(g), top.Spec.K(), oms.ScorerFennel, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jOMS := mapRes.MappingCost(g, top)
	jFen := fenRes.MappingCost(g, top)
	if jOMS >= jFen {
		t.Fatalf("OMS J %v not below flat Fennel J %v", jOMS, jFen)
	}
}

func TestMapBalanced(t *testing.T) {
	g := oms.GenRMATCitation(4096, 20000, 7)
	top := oms.MustTopology("4:16:2", "1:10:100")
	res, err := oms.MapGraph(g, top, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesConstraintsAndQuality(t *testing.T) {
	g := oms.GenDelaunay(20000, 11)
	k := int32(256)
	seq, err := oms.PartitionGraph(g, k, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := oms.PartitionGraph(g, k, oms.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
	// Parallel runs are nondeterministic but must stay in the same
	// quality regime (within 25% of sequential cut).
	sc, pc := float64(seq.EdgeCut(g)), float64(par.EdgeCut(g))
	if pc > sc*1.25 {
		t.Fatalf("parallel cut %v much worse than sequential %v", pc, sc)
	}
}

func TestRestreamImproves(t *testing.T) {
	g := oms.GenRMATSocial(4096, 20000, 13)
	k := int32(64)
	one, err := oms.PartitionGraph(g, k, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := oms.Restream(oms.NewMemorySource(g), k, nil, 2, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.EdgeCut(g) > one.EdgeCut(g) {
		t.Fatalf("restreaming worsened cut: %d -> %d", one.EdgeCut(g), re.EdgeCut(g))
	}
	if err := re.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
}

func TestDiskSourceMatchesMemory(t *testing.T) {
	g := oms.GenDelaunay(2000, 17)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.metis")
	if err := oms.WriteMetisFile(path, g); err != nil {
		t.Fatal(err)
	}
	k := int32(16)
	mem, err := oms.Partition(oms.NewMemorySource(g), k, oms.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := oms.Partition(oms.NewDiskSource(path), k, oms.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for u := range mem.Parts {
		if mem.Parts[u] != disk.Parts[u] {
			t.Fatalf("disk and memory streams disagree at node %d", u)
		}
	}
}

func TestMetisRoundTrip(t *testing.T) {
	g := oms.GenWattsStrogatz(500, 3, 0.1, 19)
	dir := t.TempDir()
	path := filepath.Join(dir, "ws.metis")
	if err := oms.WriteMetisFile(path, g); err != nil {
		t.Fatal(err)
	}
	h, err := oms.ReadMetisFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		t.Fatalf("round trip changed size: (%d,%d) -> (%d,%d)",
			g.NumNodes(), g.NumEdges(), h.NumNodes(), h.NumEdges())
	}
}

func TestReadMetisFileMissing(t *testing.T) {
	if _, err := oms.ReadMetisFile(filepath.Join(t.TempDir(), "nope.metis")); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := os.Stat("nope.metis"); err == nil {
		t.Fatal("test should not have created a file")
	}
}

func TestPartitionMultilevelQualityReference(t *testing.T) {
	g := oms.GenDelaunay(6000, 23)
	k := int32(32)
	ml, err := oms.PartitionMultilevel(g, k, oms.MultilevelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
	strRes, err := oms.PartitionGraph(g, k, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ml.EdgeCut(g) >= strRes.EdgeCut(g) {
		t.Fatalf("multilevel cut %d not below streaming %d", ml.EdgeCut(g), strRes.EdgeCut(g))
	}
}

func TestMapOfflineBestQuality(t *testing.T) {
	// Quality ordering of the paper's Figure 2a, on one instance:
	// offline mapping (IntMap role) <= J of streaming OMS <= flat Hashing.
	g := oms.GenRGG2D(6000, 29)
	top := oms.MustTopology("4:4:4", "1:10:100")
	off, err := oms.MapOffline(g, top, oms.OfflineMapOptions{Seed: 1, SwapRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	str, err := oms.MapGraph(g, top, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := oms.PartitionOnePass(oms.NewMemorySource(g), top.Spec.K(), oms.ScorerHashing, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jOff := off.MappingCost(g, top)
	jStr := str.MappingCost(g, top)
	jHash := hash.MappingCost(g, top)
	if !(jOff < jStr && jStr < jHash) {
		t.Fatalf("quality ordering violated: offline %v, streaming %v, hashing %v", jOff, jStr, jHash)
	}
}

func TestHybridTradeoff(t *testing.T) {
	// Hashing the bottom layers must not break balance and should sit
	// between pure Fennel-scored OMS and pure Hashing in cut quality.
	g := oms.GenDelaunay(8000, 31)
	top := oms.MustTopology("4:4:4", "1:10:100")
	pure, err := oms.MapGraph(g, top, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := oms.MapGraph(g, top, oms.Options{HashLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	allHash, err := oms.MapGraph(g, top, oms.Options{Scorer: oms.ScorerHashing})
	if err != nil {
		t.Fatal(err)
	}
	if err := hybrid.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
	pc, hc, ac := pure.EdgeCut(g), hybrid.EdgeCut(g), allHash.EdgeCut(g)
	if !(pc <= hc && hc <= ac) {
		t.Fatalf("hybrid cut %d outside [pure %d, hashing %d]", hc, pc, ac)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := oms.GenErdosRenyi(100, 300, 1)
	if _, err := oms.PartitionGraph(g, 0, oms.Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := oms.PartitionGraph(g, 4, oms.Options{Epsilon: -0.5}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := oms.PartitionGraph(g, 4, oms.Options{Base: 1}); err == nil {
		t.Fatal("base 1 accepted")
	}
	if _, err := oms.Restream(oms.NewMemorySource(g), 4, nil, -1, oms.Options{}); err == nil {
		t.Fatal("negative passes accepted")
	}
}

func TestPartitionBufferedFacade(t *testing.T) {
	g := oms.GenRGG2D(8000, 41)
	k := int32(32)
	buf, err := oms.PartitionBuffered(oms.NewMemorySource(g), k, oms.BufferedOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
	fen, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerFennel, oms.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if buf.EdgeCut(g) >= fen.EdgeCut(g) {
		t.Fatalf("buffered cut %d not below one-pass Fennel %d on a geometric graph",
			buf.EdgeCut(g), fen.EdgeCut(g))
	}
}

func TestLevelCutsExplainMappingCost(t *testing.T) {
	g := oms.GenDelaunay(6000, 43)
	top := oms.MustTopology("4:4:4", "1:10:100")
	res, err := oms.MapGraph(g, top, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cuts := res.LevelCuts(g, top)
	if len(cuts) != 3 {
		t.Fatalf("want 3 levels, got %d", len(cuts))
	}
	var j float64
	var total float64
	for i, c := range cuts {
		j += c * top.Dist.D[i]
		total += c
	}
	if got := res.MappingCost(g, top); got != j {
		t.Fatalf("level cuts x distances %v != J %v", j, got)
	}
	if int64(total) != res.EdgeCut(g) {
		t.Fatalf("level cuts sum %v != edge cut %d", total, res.EdgeCut(g))
	}
}
