module oms

go 1.22
