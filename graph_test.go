package oms_test

import (
	"os"
	"path/filepath"
	"testing"

	"oms"
)

func TestGeneratorsProduceValidGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *oms.Graph
	}{
		{"rgg2d", oms.GenRGG2D(3000, 1)},
		{"delaunay", oms.GenDelaunay(3000, 2)},
		{"grid2d", oms.GenGrid2D(40, 50, false)},
		{"grid2d-diag", oms.GenGrid2D(40, 50, true)},
		{"grid3d", oms.GenGrid3D(10, 12, 14)},
		{"rmat-social", oms.GenRMATSocial(4096, 20000, 3)},
		{"rmat-citation", oms.GenRMATCitation(4096, 20000, 4)},
		{"ba", oms.GenBarabasiAlbert(3000, 4, 5)},
		{"ws", oms.GenWattsStrogatz(3000, 3, 0.1, 6)},
		{"road", oms.GenRoadLike(3000, 2.2, 7)},
		{"er", oms.GenErdosRenyi(3000, 9000, 8)},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if c.g.NumNodes() == 0 || c.g.NumEdges() == 0 {
			t.Fatalf("%s: degenerate graph n=%d m=%d", c.name, c.g.NumNodes(), c.g.NumEdges())
		}
	}
}

func TestBuilderFacade(t *testing.T) {
	b := oms.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Finish()
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	h := oms.FromAdjacency([][]int32{{1}, {0, 2}, {1}})
	if h.NumEdges() != 2 {
		t.Fatalf("FromAdjacency m=%d", h.NumEdges())
	}
}

func TestWriteMetisFileBadPath(t *testing.T) {
	g := oms.GenErdosRenyi(100, 300, 1)
	if err := oms.WriteMetisFile(filepath.Join(t.TempDir(), "no", "such", "dir", "g.metis"), g); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}

func TestReadEdgeListFileEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	content := "# snap header\n10 20\n20 30\n30 10\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, ids, err := oms.ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle parsed as n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if ids[10] != 0 {
		t.Fatal("first-appearance compaction broken")
	}
	// The converted graph is directly partitionable.
	res, err := oms.PartitionGraph(g, 2, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListFileMissing(t *testing.T) {
	if _, _, err := oms.ReadEdgeListFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("expected error")
	}
}

func TestHeterogeneousKBalanced(t *testing.T) {
	// §3.3: k values that are not powers of the base still satisfy the
	// balance constraint through heterogeneous tree capacities.
	g := oms.GenDelaunay(10000, 9)
	for _, k := range []int32{3, 5, 7, 13, 37, 100, 129, 1000} {
		res, err := oms.PartitionGraph(g, k, oms.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestMustTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	oms.MustTopology("not-a-spec", "1:10")
}

func TestNewTopologyErrors(t *testing.T) {
	if _, err := oms.NewTopology("4:x", "1:10"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := oms.NewTopology("4:4", "1:x"); err == nil {
		t.Fatal("bad distances accepted")
	}
	if _, err := oms.NewTopology("4:4", "1:10:100"); err == nil {
		t.Fatal("level mismatch accepted")
	}
}

func TestRestreamWithTopology(t *testing.T) {
	g := oms.GenRGG2D(5000, 21)
	top := oms.MustTopology("4:4:4", "1:10:100")
	one, err := oms.MapGraph(g, top, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := oms.Restream(oms.NewMemorySource(g), 0, top, 2, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.K != top.Spec.K() {
		t.Fatalf("restream K=%d", re.K)
	}
	jOne := one.MappingCost(g, top)
	jRe := re.MappingCost(g, top)
	if jRe > jOne*1.02 {
		t.Fatalf("remapping clearly worsened J: %v -> %v", jOne, jRe)
	}
	if err := re.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
}

func TestScorerLDGPartition(t *testing.T) {
	g := oms.GenDelaunay(5000, 23)
	res, err := oms.PartitionGraph(g, 32, oms.Options{Scorer: oms.ScorerLDG})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
	hash, err := oms.PartitionGraph(g, 32, oms.Options{Scorer: oms.ScorerHashing})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut(g) >= hash.EdgeCut(g) {
		t.Fatal("LDG-scored OMS not better than hashed OMS")
	}
}
