// Package oms is a shared-memory streaming graph partitioner and process
// mapper: a from-scratch Go implementation of "Recursive Multi-Section on
// the Fly: Shared-Memory Streaming Algorithms for Hierarchical Graph
// Partitioning and Process Mapping" (Faraj & Schulz, IEEE CLUSTER 2022).
//
// The core algorithm, online recursive multi-section (OMS), assigns every
// node of a streamed graph to its permanent block in a single pass: when
// a node arrives together with its adjacency list, it walks a
// multi-section tree from the root to a leaf, at each level scoring the
// children of the current block with a one-pass objective (Fennel, LDG,
// or Hashing) and descending into the best feasible one. With a machine
// topology S = a1:a2:...:al the leaves are processing elements and the
// result is a hierarchy-aware process mapping (Map); without one, an
// artificial recursive b-section tree solves plain balanced k-way graph
// partitioning (Partition).
//
// Compared to flat one-pass partitioners, the tree walk replaces the
// O(k) per-node block scan with O(sum a_i) — two orders of magnitude
// faster for large k — at a small edge-cut penalty, and it is the first
// streaming algorithm that optimizes the hierarchical process mapping
// objective J(C,D,Pi).
//
// The package also bundles every comparator of the paper's evaluation:
// the flat one-pass algorithms (PartitionOnePass), an in-memory
// multilevel partitioner standing in for KaMinPar (PartitionMultilevel),
// and an offline recursive multi-section mapper standing in for IntMap
// (MapOffline).
//
// Basic usage:
//
//	g := oms.GenDelaunay(100_000, 42)
//	res, err := oms.PartitionGraph(g, 256, oms.Options{})
//	// res.Parts[u] is the block of node u
//
// Push-based usage — when no pull source exists because nodes arrive
// from outside (the serving shape of the omsd daemon), open a Session
// and push nodes as they come; each Push returns the node's permanent
// block immediately:
//
//	s, err := oms.NewSession(oms.SessionConfig{
//		Stats: oms.StreamStats{N: n, M: m, TotalNodeWeight: int64(n), TotalEdgeWeight: m},
//		K:     256,
//	})
//	b, err := s.Push(u, 1, adj, nil) // b is u's block, assigned on the fly
//	res, err := s.Finish()
//
// Process mapping onto a machine with 4 cores per processor, 16
// processors per node and 8 nodes, with level distances 1, 10, 100:
//
//	top, err := oms.NewTopology("4:16:8", "1:10:100")
//	res, err := oms.MapGraph(g, top, oms.Options{Threads: 8})
//	cost := res.MappingCost(g, top)
package oms

import (
	"fmt"

	"oms/internal/core"
	"oms/internal/hierarchy"
	"oms/internal/metrics"
	"oms/internal/stream"
)

// Scorer selects the one-pass objective that ranks tree blocks during
// the streaming pass.
type Scorer = core.Scorer

// Scorer values. Fennel is the paper's tuned default.
const (
	// ScorerFennel ranks blocks by neighbors-gained minus a load penalty
	// alpha*gamma*load^(gamma-1) (Tsourakakis et al.), with alpha adapted
	// per multi-section subproblem (§3.2 of the paper).
	ScorerFennel = core.ScorerFennel
	// ScorerLDG ranks blocks by neighbors-gained times the remaining
	// relative capacity (Stanton & Kliot).
	ScorerLDG = core.ScorerLDG
	// ScorerHashing places nodes pseudo-randomly; fastest, worst quality.
	ScorerHashing = core.ScorerHashing
)

// DefaultEpsilon is the paper's balance slack: every block may exceed
// the average weight by at most 3%.
const DefaultEpsilon = 0.03

// DefaultBase is the paper's tuned fanout for the artificial b-section
// tree used when no topology is given (16.7% faster, 3.2% fewer cut
// edges than base 2).
const DefaultBase = 4

// Options configures a streaming run. The zero value reproduces the
// paper's tuned configuration: Fennel scoring with adapted alpha,
// epsilon 3%, base-4 artificial hierarchies, sequential execution.
type Options struct {
	// Epsilon is the allowed imbalance; 0 selects DefaultEpsilon (3%).
	// Every block obeys c(V_i) <= ceil((1+Epsilon) c(V)/k).
	Epsilon float64
	// Scorer is the objective for non-hashed layers (default Fennel).
	Scorer Scorer
	// Base is the fanout of the artificial hierarchy built by Partition
	// when no topology is given; 0 selects DefaultBase (4).
	Base int32
	// HashLayers solves this many bottom layers of the multi-section with
	// Hashing instead of Scorer: the paper's hybrid mode (§3.2), trading
	// quality on the cheap hierarchy levels for speed.
	HashLayers int
	// VanillaAlpha disables the per-subproblem adapted Fennel alpha and
	// uses the flat k-way value everywhere (ablation; the adapted value
	// is 3.1% faster and maps 9.7% better in the paper's tuning).
	VanillaAlpha bool
	// Gamma is the Fennel exponent; 0 means the paper's 1.5.
	Gamma float64
	// Threads parallelizes the streaming loop vertex-centrically (§3.4);
	// values <= 1 run sequentially and deterministically.
	Threads int
	// Seed randomizes hashing and tie-breaking.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.Base == 0 {
		o.Base = DefaultBase
	}
	return o
}

func (o Options) coreConfig() core.Config {
	return core.Config{
		Epsilon:      o.Epsilon,
		Scorer:       o.Scorer,
		Gamma:        o.Gamma,
		VanillaAlpha: o.VanillaAlpha,
		HashLayers:   o.HashLayers,
		Seed:         o.Seed,
		Threads:      o.Threads,
	}
}

// Result is a computed partition or process mapping.
type Result struct {
	// Parts assigns every node its block id (plain partitioning) or PE id
	// (process mapping), in [0, K).
	Parts []int32
	// K is the number of blocks / PEs.
	K int32
	// Lmax is the balance threshold ceil((1+eps) c(V)/k) the run obeyed.
	Lmax int64
}

// EdgeCut returns the total weight of edges crossing blocks.
func (r *Result) EdgeCut(g *Graph) int64 { return metrics.EdgeCut(g, r.Parts) }

// MappingCost returns the process-mapping objective J(C,D,Pi) of the
// result on the given topology.
func (r *Result) MappingCost(g *Graph, top *Topology) float64 {
	return metrics.MappingCost(g, r.Parts, top)
}

// Imbalance returns max_b c(V_b) * k / c(V) - 1: 0 is perfect balance,
// and values <= Epsilon satisfy the balance constraint.
func (r *Result) Imbalance(g *Graph) float64 { return metrics.Imbalance(g, r.Parts, r.K) }

// LevelCuts decomposes the result's cut edges by hierarchy level:
// element i is the weight of edges whose endpoints share level i
// (0 = innermost, cheapest) and nothing lower. The entries sum to the
// edge-cut; weighted by the level distances they sum to MappingCost.
// This shows directly whether an algorithm pushed its cut edges toward
// the cheap levels — the mechanism behind hierarchical mapping quality.
func (r *Result) LevelCuts(g *Graph, top *Topology) []float64 {
	return metrics.LevelCuts(g, r.Parts, top)
}

// CheckBalanced verifies the balance constraint with slack eps, returning
// a descriptive error for the first violating block.
func (r *Result) CheckBalanced(g *Graph, eps float64) error {
	return metrics.CheckBalanced(g, r.Parts, r.K, eps)
}

// Source is a restartable one-pass node stream: nodes arrive one at a
// time together with their adjacency lists. Use NewMemorySource for
// in-memory graphs or NewDiskSource to stream a METIS file from disk
// without loading it.
type Source = stream.Source

// Topology describes a hierarchical machine: a spec S = a1:a2:...:al
// (a1 cores per processor, a2 processors per node, ...) with level
// distances D = d1:d2:...:dl. It provides the PE distance oracle of the
// mapping objective.
type Topology = hierarchy.Topology

// NewTopology parses a topology from its spec and distance strings, e.g.
// NewTopology("4:16:8", "1:10:100") for the paper's experimental setup.
func NewTopology(spec, dist string) (*Topology, error) {
	s, err := hierarchy.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	d, err := hierarchy.ParseDistances(dist)
	if err != nil {
		return nil, err
	}
	return hierarchy.NewTopology(s, d)
}

// MustTopology is NewTopology for constant inputs; it panics on error.
func MustTopology(spec, dist string) *Topology {
	t, err := NewTopology(spec, dist)
	if err != nil {
		panic(err)
	}
	return t
}

// Partition streams src once and partitions it into k balanced blocks
// with the online recursive multi-section over an artificial base-b
// hierarchy (the paper's nh-OMS). Runtime is O((m + n b) log_b k) —
// compare O(m + n k) for flat one-pass partitioners.
func Partition(src Source, k int32, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	st, err := src.Stats()
	if err != nil {
		return nil, err
	}
	o, err := core.NewGP(k, opt.Base, st, opt.coreConfig())
	if err != nil {
		return nil, err
	}
	parts, err := o.Run(src)
	if err != nil {
		return nil, err
	}
	return &Result{Parts: parts, K: k, Lmax: o.LmaxValue()}, nil
}

// Map streams src once and maps it onto the PEs of top with the online
// recursive multi-section along the topology hierarchy (the paper's OMS):
// the multi-section tree mirrors the machine, so cut edges are pushed
// toward the cheap inner levels and the mapping objective J is optimized
// implicitly, in a single pass.
func Map(src Source, top *Topology, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	st, err := src.Stats()
	if err != nil {
		return nil, err
	}
	tree := hierarchy.FromSpec(top.Spec)
	o, err := core.New(tree, st, opt.coreConfig())
	if err != nil {
		return nil, err
	}
	parts, err := o.Run(src)
	if err != nil {
		return nil, err
	}
	return &Result{Parts: parts, K: tree.K, Lmax: o.LmaxValue()}, nil
}

// PartitionGraph is Partition over an in-memory graph.
func PartitionGraph(g *Graph, k int32, opt Options) (*Result, error) {
	return Partition(stream.NewMemory(g), k, opt)
}

// MapGraph is Map over an in-memory graph.
func MapGraph(g *Graph, top *Topology, opt Options) (*Result, error) {
	return Map(stream.NewMemory(g), top, opt)
}

// Restream improves a partition or mapping with extra sequential passes
// in the spirit of ReFennel/ReLDG (the paper's remapping extension): each
// pass re-scores every node with full knowledge of the previous pass,
// first removing the node's weight from its old root-to-leaf path.
// Passes counts the additional passes after the first; top may be nil for
// plain partitioning (then k and opt.Base define the hierarchy).
func Restream(src Source, k int32, top *Topology, passes int, opt Options) (*Result, error) {
	if passes < 0 {
		return nil, fmt.Errorf("oms: negative restream passes %d", passes)
	}
	opt = opt.withDefaults()
	st, err := src.Stats()
	if err != nil {
		return nil, err
	}
	var o *core.OMS
	if top != nil {
		o, err = core.New(hierarchy.FromSpec(top.Spec), st, opt.coreConfig())
	} else {
		o, err = core.NewGP(k, opt.Base, st, opt.coreConfig())
	}
	if err != nil {
		return nil, err
	}
	parts, err := o.Restream(src, passes)
	if err != nil {
		return nil, err
	}
	return &Result{Parts: parts, K: o.K(), Lmax: o.LmaxValue()}, nil
}
