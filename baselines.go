package oms

import (
	"fmt"

	"oms/internal/buffered"
	"oms/internal/mapping"
	"oms/internal/multilevel"
	"oms/internal/onepass"
	"oms/internal/stream"
)

// PartitionOnePass streams src once with a flat (non-hierarchical)
// one-pass partitioner: the algorithms the paper evaluates against.
// ScorerFennel and ScorerLDG score all k blocks per node (O(m + nk)
// total); ScorerHashing assigns pseudo-randomly in O(n). Results carry
// the same balance guarantee as Partition.
func PartitionOnePass(src Source, k int32, scorer Scorer, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	st, err := src.Stats()
	if err != nil {
		return nil, err
	}
	cfg := onepass.Config{K: k, Epsilon: opt.Epsilon, Gamma: opt.Gamma, Seed: opt.Seed}
	threads := opt.Threads
	if threads < 1 {
		threads = 1
	}
	var alg onepass.Algorithm
	switch scorer {
	case ScorerFennel:
		alg, err = onepass.NewFennel(cfg, st, threads)
	case ScorerLDG:
		alg, err = onepass.NewLDG(cfg, st, threads)
	case ScorerHashing:
		alg, err = onepass.NewHashing(cfg, st)
	default:
		return nil, fmt.Errorf("oms: unknown scorer %v", scorer)
	}
	if err != nil {
		return nil, err
	}
	parts, err := onepass.Run(src, alg, threads)
	if err != nil {
		return nil, err
	}
	return &Result{Parts: parts, K: k, Lmax: onepass.Lmax(st.TotalNodeWeight, k, opt.Epsilon)}, nil
}

// BufferedOptions tunes the buffered streaming partitioner.
type BufferedOptions = buffered.Config

// PartitionBuffered streams src once in buffered chunks (the "other"
// streaming model of the paper's §2.2, in the spirit of HeiStream):
// nodes are buffered, assigned with the Fennel objective, then locally
// refined within the chunk before committing. Quality sits between the
// strict one-pass algorithms and the in-memory multilevel partitioner,
// at O(n + k + chunk) memory. K in opt is overridden by the k argument.
func PartitionBuffered(src Source, k int32, opt BufferedOptions) (*Result, error) {
	st, err := src.Stats()
	if err != nil {
		return nil, err
	}
	opt.K = k
	if opt.Epsilon == 0 {
		opt.Epsilon = DefaultEpsilon
	}
	p, err := buffered.New(opt, st)
	if err != nil {
		return nil, err
	}
	parts, err := p.Run(src)
	if err != nil {
		return nil, err
	}
	return &Result{Parts: parts, K: k, Lmax: p.LmaxValue()}, nil
}

// MultilevelOptions tunes the in-memory multilevel partitioner.
type MultilevelOptions = multilevel.Options

// PartitionMultilevel partitions an in-memory graph with the bundled
// multilevel partitioner (label-propagation-clustering coarsening,
// recursive-bisection initial partitioning with FM refinement,
// size-constrained label-propagation uncoarsening). It is this module's
// stand-in for KaMinPar: the quality reference that every streaming
// algorithm loses to on edge-cut, at in-memory time and space cost.
func PartitionMultilevel(g *Graph, k int32, opt MultilevelOptions) (*Result, error) {
	if opt.Epsilon == 0 {
		opt.Epsilon = DefaultEpsilon
	}
	parts, err := multilevel.Partition(g, k, opt)
	if err != nil {
		return nil, err
	}
	st, _ := stream.NewMemory(g).Stats()
	return &Result{Parts: parts, K: k, Lmax: onepass.Lmax(st.TotalNodeWeight, k, opt.Epsilon)}, nil
}

// OfflineMapOptions tunes the offline recursive multi-section mapper.
type OfflineMapOptions = mapping.Options

// MapOffline maps an in-memory graph onto top with offline recursive
// multi-section over the multilevel partitioner plus greedy block-to-PE
// swap refinement. It is this module's stand-in for IntMap: the best
// mapping quality of the evaluation, sequential only, with full-graph
// memory cost.
func MapOffline(g *Graph, top *Topology, opt OfflineMapOptions) (*Result, error) {
	if opt.Epsilon == 0 {
		opt.Epsilon = DefaultEpsilon
	}
	parts, err := mapping.OfflineMap(g, top, opt)
	if err != nil {
		return nil, err
	}
	k := top.Spec.K()
	st, _ := stream.NewMemory(g).Stats()
	return &Result{Parts: parts, K: k, Lmax: onepass.Lmax(st.TotalNodeWeight, k, opt.Epsilon)}, nil
}
