package oms

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"oms/internal/stream"
	"oms/internal/wire"
)

// WriteWireStream writes g as a v2 wire stream: one stream-header frame
// declaring the global stats, then one node frame per node in natural
// order — the same frames omsd's binary ingest route accepts and its
// WAL records, so a file written here can be replayed straight onto the
// network or fed to Partition via NewWireSource.
func WriteWireStream(w io.Writer, g *Graph) error {
	buf := wire.AppendFrame(nil, wire.AppendStreamHeaderPayload(nil, wire.StreamHeader{
		N:               g.NumNodes(),
		M:               g.NumEdges(),
		TotalNodeWeight: g.TotalNodeWeight(),
		TotalEdgeWeight: g.TotalEdgeWeight(),
	}))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		ew := g.EdgeWeights(u)
		if len(ew) == 0 {
			ew = nil
		}
		buf = wire.AppendNodeFrame(buf[:0], u, g.NodeWeight(u), g.Neighbors(u), ew)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteWireFile writes g as a v2 wire-stream file.
func WriteWireFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := WriteWireStream(w, g); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WireSource streams a v2 wire-stream file as an oms.Source: stats come
// from the header frame, each pass re-reads the node frames in file
// order. It implements Source.
type WireSource struct {
	Path string
}

// NewWireSource wraps the wire-stream file at path.
func NewWireSource(path string) *WireSource { return &WireSource{Path: path} }

// Stats implements Source: it reads the header frame only.
func (s *WireSource) Stats() (stream.Stats, error) {
	f, err := os.Open(s.Path)
	if err != nil {
		return stream.Stats{}, err
	}
	defer f.Close()
	rd := wire.NewReader(bufio.NewReaderSize(f, 64<<10))
	h, err := readWireHeader(rd)
	if err != nil {
		return stream.Stats{}, err
	}
	return stream.Stats{
		N:               h.N,
		M:               h.M,
		TotalNodeWeight: h.TotalNodeWeight,
		TotalEdgeWeight: h.TotalEdgeWeight,
	}, nil
}

// ForEach implements Source: one sequential pass over the node frames.
func (s *WireSource) ForEach(fn stream.Visitor) error {
	f, err := os.Open(s.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd := wire.NewReader(bufio.NewReaderSize(f, 1<<20))
	if _, err := readWireHeader(rd); err != nil {
		return err
	}
	for {
		nd, _, err := rd.NextNode()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("wire stream %s: %w", s.Path, err)
		}
		fn(nd.U, nd.W, nd.Adj, nd.EW)
		rd.Arena.Reset()
	}
}

// ForEachParallel implements Source. Frame decoding is inherently
// sequential (frames are self-delimiting), so the pass runs on one
// worker; the engine's batch path re-parallelizes downstream.
func (s *WireSource) ForEachParallel(threads int, fn stream.ParallelVisitor) error {
	return s.ForEach(func(u int32, vwgt int32, adj []int32, ewgt []int32) {
		fn(0, u, vwgt, adj, ewgt)
	})
}

// readWireHeader reads the mandatory leading stream-header frame.
func readWireHeader(rd *wire.Reader) (wire.StreamHeader, error) {
	payload, _, err := rd.NextFrame()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return wire.StreamHeader{}, fmt.Errorf("wire stream: empty file: %w", wire.ErrMalformed)
		}
		return wire.StreamHeader{}, err
	}
	h, err := wire.DecodeStreamHeaderPayload(payload)
	if err != nil {
		return wire.StreamHeader{}, fmt.Errorf("wire stream: missing header frame: %w", err)
	}
	rd.Arena.Reset()
	return h, nil
}
