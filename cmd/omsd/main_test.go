package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oms"
)

func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not come up")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// One tiny session through the real daemon: create, ingest, finish.
	resp, err = http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"n":4,"m":3,"k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	lines := `{"u":0,"adj":[1]}
{"u":1,"adj":[0,2]}
{"u":2,"adj":[1,3]}
{"u":3,"adj":[2]}
`
	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%s/nodes", base, created.ID),
		"application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(body), `"b":`); got != 4 {
		t.Fatalf("streamed %d assignments, want 4: %s", got, body)
	}
	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%s/finish", base, created.ID),
		"application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Assigned int32 `json:"assigned"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Assigned != 4 {
		t.Fatalf("finish assigned %d, want 4", sum.Assigned)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// startDaemon launches the daemon with the given extra args and returns
// its base URL plus a stop function that kills it and waits for exit.
func startDaemon(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), ready)
	}()
	select {
	case addr := <-ready:
		stopped := false
		return "http://" + addr, func() {
			if stopped {
				return
			}
			stopped = true
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("daemon exit: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("daemon did not shut down")
			}
		}
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatal("daemon did not come up")
	}
	panic("unreachable")
}

// ndjsonNodes encodes graph nodes [lo, hi) as NDJSON ingest lines.
func ndjsonNodes(t *testing.T, g *oms.Graph, lo, hi int32) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for u := lo; u < hi; u++ {
		if err := enc.Encode(map[string]any{"u": u, "adj": g.Neighbors(u)}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestCrashRecoveryParity is the durability acceptance test: an ingest
// killed mid-stream, the daemon restarted against the same -data-dir,
// the session resumed at the exact next node — and the final
// assignments must be byte-identical to the same stream run
// uninterrupted in process.
func TestCrashRecoveryParity(t *testing.T) {
	dataDir := t.TempDir()
	g := oms.GenDelaunay(4000, 11)
	n, m := g.NumNodes(), g.NumEdges()
	const k = 8

	// The uninterrupted reference run.
	eng, err := oms.NewSession(oms.SessionConfig{Stats: oms.StreamStats{N: n, M: m}, K: k})
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < n; u++ {
		if _, err := eng.Push(u, 1, g.Neighbors(u), nil); err != nil {
			t.Fatal(err)
		}
	}
	want, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// First daemon: create the session, deliver 60% of the stream, die.
	base, stop := startDaemon(t, "-data-dir", dataDir, "-wal-sync", "0", "-snapshot-every", "700")
	resp, err := http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(fmt.Sprintf(`{"n":%d,"m":%d,"k":%d}`, n, m, k)))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cut := n * 3 / 5
	resp, err = http.Post(base+"/v1/sessions/"+created.ID+"/nodes",
		"application/x-ndjson", strings.NewReader(ndjsonNodes(t, g, 0, cut)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(body), `"b":`); got != int(cut) {
		t.Fatalf("first half acked %d assignments, want %d", got, cut)
	}
	stop()

	// Second daemon, same data dir: the session must be back, resumed
	// at exactly node `cut`.
	base2, stop2 := startDaemon(t, "-data-dir", dataDir, "-wal-sync", "0")
	defer stop2() // idempotent; the explicit stop below normally runs first
	resp, err = http.Get(base2 + "/v1/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Assigned int32 `json:"assigned"`
		Finished bool  `json:"finished"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Finished || status.Assigned != cut {
		t.Fatalf("recovered session at node %d (finished=%v), want resumable at %d", status.Assigned, status.Finished, cut)
	}

	// Deliver the tail, finish, and compare the full assignment vector.
	resp, err = http.Post(base2+"/v1/sessions/"+created.ID+"/nodes",
		"application/x-ndjson", strings.NewReader(ndjsonNodes(t, g, cut, n)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Post(base2+"/v1/sessions/"+created.ID+"/finish", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(base2 + "/v1/sessions/" + created.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result struct {
		Parts []int32 `json:"parts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(result.Parts) != len(want.Parts) {
		t.Fatalf("result has %d parts, want %d", len(result.Parts), len(want.Parts))
	}
	for u := range want.Parts {
		if result.Parts[u] != want.Parts[u] {
			t.Fatalf("node %d: recovered run assigned %d, uninterrupted run %d", u, result.Parts[u], want.Parts[u])
		}
	}

	// A sealed session also survives a second restart with its result.
	stop2()
	base3, stop3 := startDaemon(t, "-data-dir", dataDir)
	defer stop3()
	resp, err = http.Get(base3 + "/v1/sessions/" + created.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var again struct {
		Parts []int32 `json:"parts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for u := range want.Parts {
		if again.Parts[u] != want.Parts[u] {
			t.Fatalf("node %d: sealed recovery assigned %d, want %d", u, again.Parts[u], want.Parts[u])
		}
	}
}

// postNDJSON posts body to path and decodes the {"u","b"} assignment
// lines streamed back.
func postNDJSON(t *testing.T, url, body string) map[int32]int32 {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[int32]int32)
	dec := json.NewDecoder(resp.Body)
	for {
		var line struct {
			U     int32   `json:"u"`
			B     *int32  `json:"b"`
			Error *string `json:"error"`
		}
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if line.Error != nil {
			t.Fatalf("ingest error line: %s", *line.Error)
		}
		if line.B != nil {
			out[line.U] = *line.B
		}
	}
	return out
}

// TestBatchCrashRecoveryParity is the group-commit acceptance test: a
// parallel batch ingest killed mid-stream must come back with exactly
// the assignments that were acknowledged — parallel assignment is not
// deterministic, so recovery replays the WAL's recorded decisions, not
// the algorithm.
func TestBatchCrashRecoveryParity(t *testing.T) {
	dataDir := t.TempDir()
	g := oms.GenDelaunay(4000, 13)
	n, m := g.NumNodes(), g.NumEdges()
	const k = 8

	base, stop := startDaemon(t, "-data-dir", dataDir, "-wal-sync", "0", "-session-threads", "4")
	resp, err := http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(fmt.Sprintf(`{"n":%d,"m":%d,"k":%d,"threads":4}`, n, m, k)))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cut := n * 3 / 5
	acked := postNDJSON(t, base+"/v1/sessions/"+created.ID+"/batch", ndjsonNodes(t, g, 0, cut))
	if len(acked) != int(cut) {
		t.Fatalf("batch acked %d assignments, want %d", len(acked), cut)
	}
	stop()

	// Restart: the session resumes at the batch boundary with the acked
	// decisions intact.
	base2, stop2 := startDaemon(t, "-data-dir", dataDir, "-wal-sync", "0", "-session-threads", "4")
	defer stop2()
	resp, err = http.Get(base2 + "/v1/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Assigned int32 `json:"assigned"`
		Finished bool  `json:"finished"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Finished || status.Assigned != cut {
		t.Fatalf("recovered session at node %d (finished=%v), want resumable at %d", status.Assigned, status.Finished, cut)
	}

	postNDJSON(t, base2+"/v1/sessions/"+created.ID+"/batch", ndjsonNodes(t, g, cut, n))
	resp, err = http.Post(base2+"/v1/sessions/"+created.ID+"/finish", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(base2 + "/v1/sessions/" + created.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result struct {
		Parts []int32 `json:"parts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(result.Parts) != int(n) {
		t.Fatalf("result has %d parts, want %d", len(result.Parts), n)
	}
	for u, b := range acked {
		if result.Parts[u] != b {
			t.Fatalf("node %d: recovered run reports %d, client was acknowledged %d", u, result.Parts[u], b)
		}
	}
	for u, b := range result.Parts {
		if b < 0 || b >= k {
			t.Fatalf("node %d unassigned or out of range after recovery: %d", u, b)
		}
	}
}

// TestRefineCrashRecoveryE2E is the refinement acceptance test against
// the real daemon: ingest, finish, refine two passes off the WAL, crash
// (one version durable, plus a planted torn version), restart — the
// recovered session serves its completed versions byte-identically,
// never the torn one, and the refined cut is no worse than one-pass.
func TestRefineCrashRecoveryE2E(t *testing.T) {
	dataDir := t.TempDir()
	g := oms.GenRMATSocial(3000, 15000, 13)
	n, m := g.NumNodes(), g.NumEdges()
	const k = 16

	base, stop := startDaemon(t, "-data-dir", dataDir, "-wal-sync", "0")
	resp, err := http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(fmt.Sprintf(`{"n":%d,"m":%d,"k":%d}`, n, m, k)))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := created.ID
	resp, err = http.Post(base+"/v1/sessions/"+id+"/nodes",
		"application/x-ndjson", strings.NewReader(ndjsonNodes(t, g, 0, n)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/sessions/"+id+"/finish", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Refine two passes and wait for the job to finish.
	resp, err = http.Post(base+"/v1/sessions/"+id+"/refine", "application/json",
		strings.NewReader(`{"passes":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("refine status %d: %s", resp.StatusCode, body)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	type refineInfo struct {
		State      string `json:"state"`
		Error      string `json:"error"`
		OnePassCut *int64 `json:"one_pass_edge_cut"`
		Best       int32  `json:"best_version"`
		Versions   []struct {
			Version int32 `json:"version"`
			EdgeCut int64 `json:"edge_cut"`
		} `json:"versions"`
	}
	var info refineInfo
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("refine job never finished: %+v", info)
		}
		resp, err := http.Get(base + "/v1/sessions/" + id + "/refine")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.State == "done" {
			break
		}
		if info.State == "failed" || info.State == "canceled" {
			t.Fatalf("refine job %s: %s", info.State, info.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(info.Versions) != 2 || info.OnePassCut == nil {
		t.Fatalf("refine finished oddly: %+v", info)
	}
	if worst := info.Versions[1].EdgeCut; worst > *info.OnePassCut {
		t.Fatalf("refined cut %d worse than one-pass %d", worst, *info.OnePassCut)
	}

	fetch := func(base, version string) []byte {
		resp, err := http.Get(base + "/v1/sessions/" + id + "/result?version=" + version)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result version %s: %d %s", version, resp.StatusCode, body)
		}
		return body
	}
	v0 := fetch(base, "0")
	v1 := fetch(base, "1")
	v2 := fetch(base, "2")
	latest := fetch(base, "latest")
	if !bytes.Equal(latest, v2) {
		t.Fatal("latest does not serve version 2")
	}
	if !bytes.Equal(fetch(base, "1"), v1) {
		t.Fatal("version 1 not byte-stable")
	}

	// Crash. Plant a torn version-3 file — the bytes a crash mid-refine
	// would leave if version writes were not atomic.
	stop()
	sdir := filepath.Join(dataDir, "sessions", id)
	whole, err := os.ReadFile(filepath.Join(sdir, "version-000002"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sdir, "version-000003"), whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	base2, stop2 := startDaemon(t, "-data-dir", dataDir, "-wal-sync", "0")
	defer stop2()
	// The recovered session serves all completed versions byte-for-byte
	// (the result payload carries no daemon-run-dependent field), never
	// the torn one.
	if got := fetch(base2, "0"); !bytes.Equal(got, v0) {
		t.Fatal("version 0 not byte-stable across the crash")
	}
	if got := fetch(base2, "1"); !bytes.Equal(got, v1) {
		t.Fatal("version 1 not byte-stable across the crash")
	}
	if got := fetch(base2, "2"); !bytes.Equal(got, v2) {
		t.Fatal("version 2 not byte-stable across the crash")
	}
	resp, err = http.Get(base2 + "/v1/sessions/" + id + "/result?version=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("torn version served with status %d, want 404", resp.StatusCode)
	}
	var status struct {
		Best     int32 `json:"best_version"`
		Versions []struct {
			Version int32 `json:"version"`
			EdgeCut int64 `json:"edge_cut"`
		} `json:"versions"`
	}
	resp, err = http.Get(base2 + "/v1/sessions/" + id + "/refine")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Versions) != 2 {
		t.Fatalf("recovered %d versions, want 2", len(status.Versions))
	}
	if status.Best != info.Best {
		t.Fatalf("best version %d after crash, was %d", status.Best, info.Best)
	}
}
