package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not come up")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// One tiny session through the real daemon: create, ingest, finish.
	resp, err = http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"n":4,"m":3,"k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	lines := `{"u":0,"adj":[1]}
{"u":1,"adj":[0,2]}
{"u":2,"adj":[1,3]}
{"u":3,"adj":[2]}
`
	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%s/nodes", base, created.ID),
		"application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(body), `"b":`); got != 4 {
		t.Fatalf("streamed %d assignments, want 4: %s", got, body)
	}
	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%s/finish", base, created.ID),
		"application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Assigned int32 `json:"assigned"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Assigned != 4 {
		t.Fatalf("finish assigned %d, want 4", sum.Assigned)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
