// Command omsd is the streaming partition daemon: it serves the online
// recursive multi-section over HTTP. Clients create a session declaring
// the stream's global stats and target (k blocks or a machine topology),
// push their nodes as NDJSON chunks, and read each node's permanent
// block back while the upload is still in flight — the paper's
// on-the-fly assignment as a network service.
//
// Create a session and stream a 4-node path graph into 2 blocks:
//
//	curl -s localhost:8080/v1/sessions -d '{"n":4,"m":3,"k":2}'
//	# => {"id":"s1-...","k":2,"n":4,"lmax":2}
//	printf '%s\n' '{"u":0,"adj":[1]}' '{"u":1,"adj":[0,2]}' \
//	              '{"u":2,"adj":[1,3]}' '{"u":3,"adj":[2]}' |
//	  curl -s localhost:8080/v1/sessions/$ID/nodes --data-binary @-
//	# => {"u":0,"b":0} {"u":1,"b":0} {"u":2,"b":1} {"u":3,"b":1}
//	curl -s -X POST localhost:8080/v1/sessions/$ID/finish
//
// With -data-dir the daemon is durable: every accepted push is logged
// to a per-session WAL before it is acknowledged, engine state is
// checkpointed periodically, and a restarted daemon rebuilds sealed
// sessions' results and resumes unsealed sessions at the exact next
// node (GET /v1/sessions/{id} reports "assigned", where to resume).
//
// POST /v1/sessions/{id}/batch is the high-throughput ingest path: the
// same NDJSON lines, grouped into large atomic batches that are
// assigned across the session's parallel workers (create the session
// with "threads": N, or set the -session-threads default) and
// group-committed to the WAL as one frame each — the paper's
// shared-memory parallel streaming (§3.4) from the wire down.
//
// Sessions may be open-ended: create with "n": 0 (or "adaptive": true,
// optionally alongside rough hints in n/m/total weights) and the daemon
// estimates the stream's global stats online, re-adapting Fennel's
// alpha and the per-block capacity targets as the estimates ratchet.
// GET /v1/sessions/{id} reports the observed and estimated totals;
// finish reconciles against the true totals — with -data-dir it also
// runs one reconcile pass over the sealed WAL, restoring the declared-
// stats balance guarantee — and reports the projection error.
//
// Finished sessions can be refined in the background: POST
// /v1/sessions/{id}/refine replays the session's WAL-recorded stream
// through extra restream passes (the paper's remapping extension) on
// -refine-workers idle cores and publishes each improved assignment as
// a new immutable result version, served via GET
// /v1/sessions/{id}/result?version=N|latest|best. Versions persist like
// everything else under -data-dir, so a crash keeps the best completed
// version.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"oms/internal/cluster"
	"oms/internal/service"
	"oms/internal/telemetry"
	"oms/internal/trace"
	"oms/internal/wal"
)

// parsePeers parses -cluster-peers: "n1=http://a:8080,n2=http://b:8080".
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("omsd: -cluster-peers entry %q is not id=url", part)
		}
		peers[id] = strings.TrimRight(url, "/")
	}
	if len(peers) == 0 {
		return nil, errors.New("omsd: cluster mode requires a -cluster-peers list")
	}
	return peers, nil
}

func main() {
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until ctx is canceled or a shutdown
// signal arrives. If ready is non-nil it receives the bound address once
// the listener is up (tests use it with -addr :0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("omsd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxSessions := fs.Int("max-sessions", 1024, "concurrent session cap")
	queueDepth := fs.Int("queue-depth", 32, "ingest chunks buffered per session before backpressure")
	ttl := fs.Duration("ttl", 5*time.Minute, "idle session eviction TTL")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	sessionThreads := fs.Int("session-threads", 1, "default parallel assignment width for batch ingest (POST .../batch); clients override per session with \"threads\"")
	maxNodes := fs.Int("max-nodes", 1<<26, "per-session declared node cap")
	maxTotalNodes := fs.Int64("max-total-nodes", 1<<28, "aggregate declared node budget across live sessions")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	dataDir := fs.String("data-dir", "", "session durability directory; empty keeps sessions in memory only")
	walSync := fs.Duration("wal-sync", 100*time.Millisecond, "batched WAL fsync interval (0 = fsync every chunk)")
	snapshotEvery := fs.Int("snapshot-every", 4096, "checkpoint a session's engine state every this many logged nodes")
	refineWorkers := fs.Int("refine-workers", 1, "background refinement workers (finished sessions restreamed concurrently)")
	refinePasses := fs.Int("refine-passes", 1, "default restream passes when POST .../refine omits \"passes\"")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this side address (empty = off; keep it off the public listener)")
	logJSON := fs.Bool("log-json", false, "emit structured JSON event lines on stderr instead of prose logs")
	traceRing := fs.Int("trace-ring", 2048, "recent traces retained for GET /v1/traces (plus a flight recorder for slow/error traces)")
	traceSample := fs.Int("trace-sample", 16, "head-sample 1 in N requests without a traceparent header (0 = only explicit sampled traceparents)")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "traces at least this long are pinned in the flight recorder (0 = errors only)")
	nodeID := fs.String("node-id", "", "this node's id in cluster mode (requires -cluster-peers and -data-dir); empty runs single-node")
	clusterPeers := fs.String("cluster-peers", "", "comma-separated id=http://host:port cluster member list, including this node")
	replAck := fs.String("repl-ack", "async", "replication ack mode: async (ack after local durability) or sync (ack after the follower confirms)")
	replAckTimeout := fs.Duration("repl-ack-timeout", 2*time.Second, "sync-mode bound on waiting for a follower ack before degrading that flush to async")
	peerProbe := fs.Duration("peer-probe", 500*time.Millisecond, "cluster peer health-probe interval")
	peerFail := fs.Int("peer-fail", 3, "consecutive failed probes before a peer is declared dead and its sessions fail over")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxNodes < 1 || *maxNodes > math.MaxInt32 {
		return fmt.Errorf("omsd: -max-nodes %d outside [1, %d]", *maxNodes, math.MaxInt32)
	}
	if *refineWorkers < 1 || *refinePasses < 1 {
		return fmt.Errorf("omsd: -refine-workers %d and -refine-passes %d must be at least 1", *refineWorkers, *refinePasses)
	}

	// Structured events replace the prose log lines when -log-json is
	// set; infof keeps the prose for the default (human) mode.
	var ev *telemetry.Logger
	if *logJSON {
		ev = telemetry.New(os.Stderr)
	}
	infof := func(format string, args ...any) {
		if !*logJSON {
			log.Printf(format, args...)
		}
	}

	// The registry exists before the manager so the WAL store (created
	// first — recovery needs it) can observe into the same histograms
	// the manager exports, and so process-level gauges register here too.
	reg := service.NewRegistry()
	reg.GaugeFunc("omsd_build_info", "constant 1; the help text carries the build's "+runtime.Version(), func() int64 { return 1 })
	reg.GaugeFunc("omsd_goroutines", "live goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("omsd_heap_alloc_bytes", "bytes of allocated heap objects", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	})
	reg.GaugeFunc("omsd_gc_pause_total_ns", "cumulative GC stop-the-world pause", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.PauseTotalNs)
	})

	// The trace recorder predates the manager for the same reason the
	// registry does: sessions and the HTTP layer share it. -trace-sample
	// 0 means "never spontaneously sample", which the recorder spells -1
	// (its 0 is "use the default rate").
	sampleEvery := *traceSample
	if sampleEvery <= 0 {
		sampleEvery = -1
	}
	tracer := trace.NewRecorder(trace.Options{
		RingSize:      *traceRing,
		SampleEvery:   sampleEvery,
		SlowThreshold: *traceSlow,
	})

	var store service.Store
	var walStore *wal.Store
	if *dataDir != "" {
		st, err := wal.Open(*dataDir, wal.Options{
			SyncInterval:  *walSync,
			ObserveAppend: reg.Histogram(service.WALAppendHistogram, "WAL record encode+write time per append").Observe,
			ObserveFsync:  reg.Histogram(service.WALFsyncHistogram, "WAL fsync stall per forced or batched sync").Observe,
		})
		if err != nil {
			return fmt.Errorf("omsd: open data dir: %w", err)
		}
		store, walStore = st, st
	}

	// Cluster mode: the node decorates the store (WAL shipping to each
	// session's follower), routes misrouted sessions (ClusterView), and
	// receives replication streams (the /v1/replica handler).
	var node *cluster.Node
	var clusterView service.ClusterView
	var replicaHandler http.Handler
	if *nodeID != "" {
		if walStore == nil {
			return errors.New("omsd: cluster mode requires -data-dir (replication ships the WAL)")
		}
		peers, err := parsePeers(*clusterPeers)
		if err != nil {
			return err
		}
		replicas, err := wal.Open(filepath.Join(*dataDir, "replica"), wal.Options{SyncInterval: *walSync})
		if err != nil {
			return fmt.Errorf("omsd: open replica dir: %w", err)
		}
		node, err = cluster.NewNode(cluster.Config{
			Self:          *nodeID,
			Peers:         peers,
			Store:         walStore,
			Replicas:      replicas,
			AckMode:       *replAck,
			AckTimeout:    *replAckTimeout,
			ProbeInterval: *peerProbe,
			FailThreshold: *peerFail,
			Registry:      reg,
			Tracer:        tracer,
			Logf:          infof,
		})
		if err != nil {
			return fmt.Errorf("omsd: %w", err)
		}
		defer node.Close()
		store, clusterView, replicaHandler = node, node, node
		infof("omsd cluster mode: node %s of %d peers, %s acks", *nodeID, len(peers), *replAck)
	} else if *clusterPeers != "" {
		return errors.New("omsd: -cluster-peers requires -node-id")
	}

	mgr := service.NewManager(service.Config{
		MaxSessions:    *maxSessions,
		QueueDepth:     *queueDepth,
		SessionTTL:     *ttl,
		Workers:        *workers,
		MaxNodes:       int32(*maxNodes),
		MaxTotalNodes:  *maxTotalNodes,
		SessionThreads: *sessionThreads,
		Store:          store,
		SnapshotEvery:  *snapshotEvery,
		RefineWorkers:  *refineWorkers,
		RefinePasses:   *refinePasses,
		Registry:       reg,
		Events:         ev,
		Tracer:         tracer,
		Cluster:        clusterView,
		Replica:        replicaHandler,
	})
	defer mgr.Close()
	if node != nil {
		node.Bind(mgr)
	}

	recovered := 0
	if store != nil {
		n, err := mgr.RecoverSessions()
		if err != nil {
			// Partial recovery is served; the skipped sessions' data
			// stays on disk for inspection.
			infof("omsd: session recovery: %v", err)
		}
		if n > 0 {
			infof("omsd recovered %d session(s) from %s", n, *dataDir)
		}
		recovered = n
	}
	// Ready only now: /v1/readyz answered 503 while recovery replayed
	// logs, so a balancer never routes at a daemon mid-rebuild.
	mgr.SetReady()

	if *pprofAddr != "" {
		// A side listener, never the public mux: profiles expose heap
		// contents and must stay on an operator-only port.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("omsd: pprof listen: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", httppprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		psrv := &http.Server{Handler: pmux}
		go func() { _ = psrv.Serve(pln) }()
		defer psrv.Close()
		infof("omsd pprof on http://%s/debug/pprof/", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewServer(mgr)}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	infof("omsd listening on %s", ln.Addr())
	ev.Emit(telemetry.EventDaemonReady, map[string]any{
		"addr": ln.Addr().String(), "recovered": recovered, "go": runtime.Version(),
	})
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	infof("omsd shutting down (draining up to %s)", *drain)
	ev.Emit(telemetry.EventDaemonShutdown, map[string]any{"drain_ms": drain.Milliseconds()})
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("omsd: drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
