package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"oms"
)

// ingestExpect streams NDJSON lines and returns the acked assignment
// per node in response order.
func ingestExpect(t *testing.T, base, id, lines string) map[int32]int32 {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions/"+id+"/nodes",
		"application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	out := map[int32]int32{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var a struct {
			U     int32  `json:"u"`
			B     int32  `json:"b"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("bad line %q: %v", sc.Bytes(), err)
		}
		if a.Error != "" {
			t.Fatalf("ingest error line: %s", a.Error)
		}
		out[a.U] = a.B
	}
	return out
}

// adaptiveStatus is the GET status payload of an open-ended session.
type adaptiveStatus struct {
	Assigned int32 `json:"assigned"`
	Finished bool  `json:"finished"`
	Adaptive bool  `json:"adaptive"`
	Observed struct {
		N               int32 `json:"n"`
		M               int64 `json:"m"`
		TotalNodeWeight int64 `json:"total_node_weight"`
	} `json:"observed"`
	Estimated struct {
		N               int32 `json:"n"`
		TotalNodeWeight int64 `json:"total_node_weight"`
	} `json:"estimated"`
	StatsRevision int64 `json:"stats_revision"`
}

func getAdaptiveStatus(t *testing.T, base, id string) adaptiveStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st adaptiveStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAdaptiveCrashRecoveryE2E is the open-ended durability acceptance
// test against the real daemon: an adaptive session (no declared n/m)
// is killed mid-stream, the daemon restarts against the same -data-dir,
// and the recovered session must carry the identical estimator state
// and produce byte-identical subsequent assignments versus an uncrashed
// twin — through finish and its reconcile pass over the sealed WAL.
func TestAdaptiveCrashRecoveryE2E(t *testing.T) {
	dataDir := t.TempDir()
	g := oms.GenDelaunay(3000, 13)
	n := g.NumNodes()
	const k = 8

	// The uncrashed twin: a Record adaptive session is the in-process
	// equivalent of the daemon's persisted one — same retained
	// headroom, and its finish reconcile pass replays the same stream.
	twin, err := oms.NewSession(oms.SessionConfig{K: k, Adaptive: true, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	twinPush := func(lo, hi int32) map[int32]int32 {
		out := map[int32]int32{}
		for u := lo; u < hi; u++ {
			b, err := twin.Push(u, 1, g.Neighbors(u), nil)
			if err != nil {
				t.Fatal(err)
			}
			out[u] = b
		}
		return out
	}

	// First daemon: open the open-ended session (just "k"), deliver
	// 60%, die.
	base, stop := startDaemon(t, "-data-dir", dataDir, "-wal-sync", "0", "-snapshot-every", "500")
	resp, err := http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(fmt.Sprintf(`{"k":%d}`, k)))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID       string `json:"id"`
		Adaptive bool   `json:"adaptive"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !created.Adaptive {
		t.Fatal("n-less create did not open an adaptive session")
	}
	cut := n * 3 / 5
	got := ingestExpect(t, base, created.ID, ndjsonNodes(t, g, 0, cut))
	want := twinPush(0, cut)
	for u := int32(0); u < cut; u++ {
		if got[u] != want[u] {
			t.Fatalf("pre-crash node %d: daemon %d, twin %d", u, got[u], want[u])
		}
	}
	preCrash := getAdaptiveStatus(t, base, created.ID)
	stop()

	// Second daemon, same data dir: identical estimator state.
	base2, stop2 := startDaemon(t, "-data-dir", dataDir, "-wal-sync", "0")
	defer stop2()
	st := getAdaptiveStatus(t, base2, created.ID)
	if !st.Adaptive || st.Finished {
		t.Fatalf("recovered session adaptive=%v finished=%v", st.Adaptive, st.Finished)
	}
	if st.Assigned != cut {
		t.Fatalf("recovered at node %d, want %d", st.Assigned, cut)
	}
	if st != preCrash {
		t.Fatalf("estimator state diverged across the crash:\npre  %+v\npost %+v", preCrash, st)
	}
	twinInfo, _ := twin.AdaptiveInfo()
	if st.Observed.N != twinInfo.Observed.N || st.Observed.M != twinInfo.Observed.M ||
		st.Estimated.N != twinInfo.Estimated.N || st.StatsRevision != twinInfo.Revision {
		t.Fatalf("recovered estimator %+v disagrees with twin %+v", st, twinInfo)
	}

	// Byte-identical subsequent assignments.
	got2 := ingestExpect(t, base2, created.ID, ndjsonNodes(t, g, cut, n))
	want2 := twinPush(cut, n)
	for u := cut; u < n; u++ {
		if got2[u] != want2[u] {
			t.Fatalf("post-crash node %d: daemon %d, twin %d", u, got2[u], want2[u])
		}
	}

	// Finish both; the daemon's reconcile pass over the sealed WAL must
	// match the twin's pass over its recorded buffer.
	resp, err = http.Post(base2+"/v1/sessions/"+created.ID+"/finish", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Assigned int32 `json:"assigned"`
		Adaptive *struct {
			ObservedN    int32   `json:"observed_n"`
			ObservedM    int64   `json:"observed_m"`
			EstimateErrN float64 `json:"estimate_err_n"`
		} `json:"adaptive"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Assigned != n || sum.Adaptive == nil {
		t.Fatalf("finish summary %+v", sum)
	}
	if sum.Adaptive.ObservedN != n || sum.Adaptive.ObservedM != g.NumEdges() {
		t.Fatalf("reconciled totals %+v, want n=%d m=%d", sum.Adaptive, n, g.NumEdges())
	}
	twinRes, err := twin.Finish()
	if err != nil {
		t.Fatal(err)
	}

	var res struct {
		Parts []int32 `json:"parts"`
	}
	resp, err = http.Get(base2 + "/v1/sessions/" + created.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Parts) != len(twinRes.Parts) {
		t.Fatalf("result covers %d nodes, twin %d", len(res.Parts), len(twinRes.Parts))
	}
	for u := range twinRes.Parts {
		if res.Parts[u] != twinRes.Parts[u] {
			t.Fatalf("reconciled node %d: daemon %d, twin %d", u, res.Parts[u], twinRes.Parts[u])
		}
	}
}
