package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"oms/client"
	"oms/internal/ring"
)

// buildDaemon compiles the real omsd binary for subprocess tests —
// failover needs SIGKILL semantics, which an in-process run() cannot
// give (graceful cancel runs the shutdown path a dying node never gets).
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "omsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/omsd: %v\n%s", err, out)
	}
	return bin
}

// daemonProc is one omsd subprocess with its captured stderr.
type daemonProc struct {
	id   string
	url  string
	cmd  *exec.Cmd
	logs *bytes.Buffer
}

func startDaemonProc(t *testing.T, bin, id, hostport string, args ...string) *daemonProc {
	t.Helper()
	p := &daemonProc{id: id, url: "http://" + hostport, logs: &bytes.Buffer{}}
	p.cmd = exec.Command(bin, append([]string{"-addr", hostport}, args...)...)
	p.cmd.Stdout = p.logs
	p.cmd.Stderr = p.logs
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
		if t.Failed() {
			t.Logf("--- %s log ---\n%s", p.id, p.logs.String())
		}
	})
	return p
}

// kill SIGKILLs the daemon — the abrupt death failover is about.
func (p *daemonProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

func waitReadyz(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready (%v)", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// freePorts reserves n distinct loopback ports and releases them just
// before the daemons bind.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// chainNodes builds nodes [lo, hi) of the test's path graph: node u
// declares one edge back to u-1, so both runs stream identical bytes.
func chainNodes(lo, hi int32) []client.Node {
	nodes := make([]client.Node, 0, hi-lo)
	for u := lo; u < hi; u++ {
		var adj []int32
		if u > 0 {
			adj = []int32{u - 1}
		}
		nodes = append(nodes, client.Node{U: u, Adj: adj})
	}
	return nodes
}

// TestClusterFailoverByteIdentical is the cluster-mode acceptance test:
// a 3-node cluster serves a session, its owner is SIGKILLed mid-stream,
// and the WAL-shipped replica promotes on the follower — the resumed
// assignment stream must be byte-identical to a single-node control run
// of the same spec and stream, through to the final result vector.
// Deterministic one-pass assignment makes the log the session: if
// replication shipped the log faithfully, the promoted session cannot
// be distinguished from one that never moved.
func TestClusterFailoverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildDaemon(t)
	ctx := context.Background()

	addrs := freePorts(t, 4)
	ids := []string{"n1", "n2", "n3"}
	peers := ""
	for i, id := range ids {
		if i > 0 {
			peers += ","
		}
		peers += id + "=http://" + addrs[i]
	}
	procs := map[string]*daemonProc{}
	urls := make([]string, len(ids))
	for i, id := range ids {
		procs[id] = startDaemonProc(t, bin, id, addrs[i],
			"-data-dir", t.TempDir(), "-wal-sync", "1ms",
			"-node-id", id, "-cluster-peers", peers,
			"-repl-ack", "sync", "-peer-probe", "100ms", "-peer-fail", "2")
		urls[i] = procs[id].url
	}
	control := startDaemonProc(t, bin, "control", addrs[3],
		"-data-dir", t.TempDir(), "-wal-sync", "1ms")
	for _, p := range procs {
		waitReadyz(t, p.url)
	}
	waitReadyz(t, control.url)

	// Same spec both sides; the explicit seed makes assignment a pure
	// function of (spec, stream), independent of the session id.
	spec := client.Spec{N: 4000, M: 3999, K: 4, Seed: 12345}
	cc := client.New(urls[0], client.WithCluster(urls...))
	ctl := client.New(control.url)
	created, err := cc.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	id := created.ID
	ctlCreated, err := ctl.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	cid := ctlCreated.ID

	push := func(c *client.Client, sid string, lo, hi int32) []client.Assignment {
		t.Helper()
		as, err := c.Push(ctx, sid, chainNodes(lo, hi))
		if err != nil {
			t.Fatalf("push [%d,%d): %v", lo, hi, err)
		}
		return as
	}
	a1 := push(cc, id, 0, 2000)
	c1 := push(ctl, cid, 0, 2000)
	if len(a1) != 2000 || len(c1) != 2000 {
		t.Fatalf("first half acked %d/%d assignments, want 2000", len(a1), len(c1))
	}
	for i := range a1 {
		if a1[i] != c1[i] {
			t.Fatalf("pre-kill divergence at %d: cluster %+v, control %+v", i, a1[i], c1[i])
		}
	}

	// Resolve the session's owner from the served routing table — the
	// client-visible contract, not test-internal knowledge.
	var table struct {
		Vnodes  int `json:"vnodes"`
		Members []struct {
			ID    string `json:"id"`
			Alive bool   `json:"alive"`
		} `json:"members"`
	}
	resp, err := http.Get(urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var alive []string
	for _, m := range table.Members {
		if m.Alive {
			alive = append(alive, m.ID)
		}
	}
	owner := ring.NewRing(alive, table.Vnodes).Owner(id)
	if procs[owner] == nil {
		t.Fatalf("owner %q is not a cluster member", owner)
	}

	// SIGKILL the owner mid-stream: a push is in flight when it dies.
	pushErr := make(chan error, 1)
	go func() {
		_, err := cc.Push(ctx, id, chainNodes(2000, 3000))
		pushErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	procs[owner].kill(t)
	if err := <-pushErr; err != nil {
		t.Logf("mid-kill push surfaced: %v (resuming from authoritative count)", err)
	}

	// The routed client rides out detection + promotion; the promoted
	// session's assigned count is the authoritative resume point — with
	// sync acks it can only be what the replica durably holds.
	st, err := cc.Status(ctx, id)
	if err != nil {
		t.Fatalf("status after failover: %v", err)
	}
	resume := st.Assigned
	if resume < 2000 || resume > 3000 {
		t.Fatalf("promoted session resumed at %d, want within [2000,3000]", resume)
	}
	t.Logf("owner %s killed; promoted session resumes at node %d", owner, resume)

	// Catch the control session up to the resume point, then compare
	// the resumed assignment streams element for element.
	if resume > 2000 {
		push(ctl, cid, 2000, resume)
	}
	a2 := push(cc, id, resume, 4000)
	c2 := push(ctl, cid, resume, 4000)
	if len(a2) != len(c2) {
		t.Fatalf("resumed streams acked %d vs %d assignments", len(a2), len(c2))
	}
	for i := range a2 {
		if a2[i] != c2[i] {
			t.Fatalf("resumed stream diverged at %d: cluster %+v, control %+v", i, a2[i], c2[i])
		}
	}

	// Full-vector check: finish both and the result parts must match —
	// the promoted run is indistinguishable end to end.
	if _, err := cc.Finish(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Finish(ctx, cid); err != nil {
		t.Fatal(err)
	}
	res, err := cc.Result(ctx, id, "")
	if err != nil {
		t.Fatal(err)
	}
	ctlRes, err := ctl.Result(ctx, cid, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != len(ctlRes.Parts) {
		t.Fatalf("result covers %d nodes, control %d", len(res.Parts), len(ctlRes.Parts))
	}
	for u := range res.Parts {
		if res.Parts[u] != ctlRes.Parts[u] {
			t.Fatalf("node %d: failover run assigned %d, control %d", u, res.Parts[u], ctlRes.Parts[u])
		}
	}
}
