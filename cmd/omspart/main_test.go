package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"oms"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g := oms.GenDelaunay(2000, 3)
	path := filepath.Join(t.TempDir(), "g.metis")
	if err := oms.WriteMetisFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPlainPartition(t *testing.T) {
	path := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "parts.txt")
	if err := run(path, 16, "", "1:10:100", "oms", 0.03, 1, 1, 4, 0, false, "natural", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			t.Fatalf("line %d not an int: %q", lines, sc.Text())
		}
		if v < 0 || v >= 16 {
			t.Fatalf("block %d out of range", v)
		}
		lines++
	}
	if lines != 2000 {
		t.Fatalf("partition file has %d lines, want 2000", lines)
	}
}

func TestRunMapping(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(path, 0, "4:4:2", "1:10:100", "oms", 0.03, 2, 1, 4, 0, false, "natural", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeTestGraph(t)
	for _, alg := range []string{"fennel", "ldg", "hashing", "multilevel"} {
		if err := run(path, 8, "", "1:10:100", alg, 0.03, 1, 1, 4, 0, false, "natural", ""); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	if err := run(path, 0, "2:2:2", "1:10:100", "offline", 0.03, 1, 1, 4, 0, false, "natural", ""); err != nil {
		t.Fatalf("offline: %v", err)
	}
}

func TestRunInMemoryFlag(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(path, 8, "", "1:10:100", "oms", 0.03, 1, 1, 4, 0, true, "natural", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunHybridLayers(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(path, 0, "4:4:2", "1:10:100", "oms", 0.03, 1, 1, 4, 2, false, "natural", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(path, 0, "", "1:10:100", "oms", 0.03, 1, 1, 4, 0, false, "natural", ""); err == nil {
		t.Fatal("missing k and topo accepted")
	}
	if err := run(path, 8, "", "1:10:100", "bogus", 0.03, 1, 1, 4, 0, false, "natural", ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run(path, 8, "", "1:10:100", "offline", 0.03, 1, 1, 4, 0, false, "natural", ""); err == nil {
		t.Fatal("offline without topo accepted")
	}
	if err := run(path, 0, "4:x", "1:10", "oms", 0.03, 1, 1, 4, 0, false, "natural", ""); err == nil {
		t.Fatal("bad topology accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.metis"), 8, "", "1:10:100", "oms", 0.03, 1, 1, 4, 0, false, "natural", ""); err == nil {
		t.Fatal("missing graph accepted")
	}
	if err := run(path, 8, "", "1:10:100", "oms", 0.03, 1, 1, 4, 0, false, "sideways", ""); err == nil {
		t.Fatal("unknown order accepted")
	}
}

func TestRunStreamOrders(t *testing.T) {
	path := writeTestGraph(t)
	for _, order := range []string{"random", "degree-desc", "degree-asc", "bfs"} {
		if err := run(path, 8, "", "1:10:100", "oms", 0.03, 1, 1, 4, 0, false, order, ""); err != nil {
			t.Fatalf("%s: %v", order, err)
		}
	}
}
