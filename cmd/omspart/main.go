// Command omspart partitions or maps a METIS-format graph with the
// streaming online recursive multi-section or one of the bundled
// comparators, printing edge-cut, mapping cost, balance and timing.
//
// Plain k-way partitioning (nh-OMS, streamed from disk):
//
//	omspart -graph web.metis -k 1024
//
// Process mapping onto a 4:16:8 machine (OMS):
//
//	omspart -graph web.metis -topo 4:16:8 -dist 1:10:100 -threads 8
//
// Comparators: -alg fennel | ldg | hashing | multilevel | offline.
// multilevel and offline load the whole graph into memory; the streaming
// algorithms run from disk unless -inmemory is set.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"oms"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input METIS graph (required)")
		k         = flag.Int("k", 0, "number of blocks (plain partitioning)")
		topoStr   = flag.String("topo", "", "topology spec a1:a2:...:al (process mapping)")
		distStr   = flag.String("dist", "1:10:100", "level distances d1:d2:...:dl")
		alg       = flag.String("alg", "oms", "oms | fennel | ldg | hashing | multilevel | offline")
		eps       = flag.Float64("eps", 0.03, "allowed imbalance")
		threads   = flag.Int("threads", 1, "streaming worker threads")
		seed      = flag.Uint64("seed", 1, "random seed")
		base      = flag.Int("base", 4, "artificial hierarchy base (nh-OMS)")
		hashLay   = flag.Int("hashlayers", 0, "bottom layers solved by Hashing (hybrid OMS)")
		inMemory  = flag.Bool("inmemory", false, "load the graph instead of streaming from disk")
		orderStr  = flag.String("order", "natural", "stream order: natural | random | degree-desc | degree-asc | bfs (non-natural implies -inmemory)")
		outPath   = flag.String("o", "", "write the partition vector (one block id per line)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "omspart: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *k, *topoStr, *distStr, *alg, *eps, *threads, *seed, *base, *hashLay, *inMemory, *orderStr, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "omspart:", err)
		os.Exit(1)
	}
}

func parseOrder(s string) (oms.StreamOrder, error) {
	switch s {
	case "natural", "":
		return oms.OrderNatural, nil
	case "random":
		return oms.OrderRandom, nil
	case "degree-desc":
		return oms.OrderDegreeDesc, nil
	case "degree-asc":
		return oms.OrderDegreeAsc, nil
	case "bfs":
		return oms.OrderBFS, nil
	default:
		return 0, fmt.Errorf("unknown -order %q", s)
	}
}

func run(graphPath string, k int, topoStr, distStr, alg string, eps float64, threads int, seed uint64, base, hashLayers int, inMemory bool, orderStr, outPath string) error {
	var top *oms.Topology
	if topoStr != "" {
		t, err := oms.NewTopology(topoStr, distStr)
		if err != nil {
			return err
		}
		top = t
		k = int(t.Spec.K())
	}
	if k < 1 {
		return fmt.Errorf("need -k or -topo")
	}

	opt := oms.Options{
		Epsilon:    eps,
		Threads:    threads,
		Seed:       seed,
		Base:       int32(base),
		HashLayers: hashLayers,
	}

	order, err := parseOrder(orderStr)
	if err != nil {
		return err
	}
	needMemory := alg == "multilevel" || alg == "offline" || inMemory || order != oms.OrderNatural
	var g *oms.Graph
	var src oms.Source
	if needMemory {
		g, err = oms.ReadMetisFile(graphPath)
		if err != nil {
			return err
		}
		if order != oms.OrderNatural {
			src = oms.NewOrderedSource(g, order, seed)
		} else {
			src = oms.NewMemorySource(g)
		}
	} else {
		src = oms.NewDiskSource(graphPath)
	}

	start := time.Now()
	var res *oms.Result
	switch alg {
	case "oms":
		if top != nil {
			res, err = oms.Map(src, top, opt)
		} else {
			res, err = oms.Partition(src, int32(k), opt)
		}
	case "fennel":
		res, err = oms.PartitionOnePass(src, int32(k), oms.ScorerFennel, opt)
	case "ldg":
		res, err = oms.PartitionOnePass(src, int32(k), oms.ScorerLDG, opt)
	case "hashing":
		res, err = oms.PartitionOnePass(src, int32(k), oms.ScorerHashing, opt)
	case "multilevel":
		res, err = oms.PartitionMultilevel(g, int32(k), oms.MultilevelOptions{Epsilon: eps, Seed: seed})
	case "offline":
		if top == nil {
			return fmt.Errorf("-alg offline requires -topo")
		}
		res, err = oms.MapOffline(g, top, oms.OfflineMapOptions{Epsilon: eps, Seed: seed, SwapRounds: 3})
	default:
		return fmt.Errorf("unknown -alg %q", alg)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("algorithm   %s\n", alg)
	fmt.Printf("k           %d\n", res.K)
	fmt.Printf("time        %.4fs\n", elapsed.Seconds())

	// Quality metrics need the graph in memory; load it if we streamed.
	if g == nil {
		g, err = oms.ReadMetisFile(graphPath)
		if err != nil {
			return fmt.Errorf("reloading graph for metrics: %w", err)
		}
	}
	fmt.Printf("edge-cut    %d\n", res.EdgeCut(g))
	fmt.Printf("imbalance   %.5f (allowed Lmax %d)\n", res.Imbalance(g), res.Lmax)
	if top != nil {
		fmt.Printf("mapping J   %.0f\n", res.MappingCost(g, top))
		cuts := res.LevelCuts(g, top)
		fmt.Printf("level cuts ")
		for i, c := range cuts {
			fmt.Printf("  L%d(d=%g)=%.0f", i, top.Dist.D[i], c)
		}
		fmt.Println()
	}
	if err := res.CheckBalanced(g, eps); err != nil {
		fmt.Printf("balance     VIOLATED: %v\n", err)
	} else {
		fmt.Printf("balance     ok\n")
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriterSize(f, 1<<20)
		for _, p := range res.Parts {
			fmt.Fprintln(w, p)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
