package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oms/internal/service"
	"oms/internal/slo"
)

// syntheticServer serves a registry filled with a known workload: the
// push histogram uniform over (0, 1ms], the fsync histogram with one
// 20ms stall, a backlog gauge, and a counter that grows per scrape.
func syntheticServer(t *testing.T) (*httptest.Server, *service.Registry) {
	t.Helper()
	reg := service.NewRegistry()
	push := reg.Histogram("omsd_http_push_seconds", "push latency")
	for i := 1; i <= 1000; i++ {
		push.Observe(time.Duration(i) * time.Microsecond)
	}
	fsync := reg.Histogram("omsd_wal_fsync_seconds", "fsync stall")
	fsync.Observe(20 * time.Millisecond)
	reg.Gauge("omsd_queue_backlog", "backlog").Add(7)
	ops := reg.Counter("ops_total", "ops")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ops.Add(10)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteText(w)
	}))
	t.Cleanup(srv.Close)
	return srv, reg
}

func runStat(t *testing.T, cfg config) (int, *summary, string) {
	return runStatCtx(t, context.Background(), cfg)
}

func runStatCtx(t *testing.T, ctx context.Context, cfg config) (int, *summary, string) {
	t.Helper()
	dir := t.TempDir()
	var out, errw bytes.Buffer
	cfg.outDir = dir
	cfg.stdout, cfg.stderr = &out, &errw
	if cfg.samples == 0 {
		cfg.samples = 3
	}
	if cfg.interval == 0 {
		cfg.interval = time.Millisecond
	}
	code := run(ctx, cfg)
	var sum *summary
	if raw, err := os.ReadFile(filepath.Join(dir, "summary.json")); err == nil {
		sum = &summary{}
		if err := json.Unmarshal(raw, sum); err != nil {
			t.Fatalf("summary.json does not parse: %v", err)
		}
	}
	t.Logf("stdout:\n%s\nstderr:\n%s", out.String(), errw.String())
	return code, sum, dir
}

func TestQuantilesMatchSnapshot(t *testing.T) {
	srv, reg := syntheticServer(t)
	code, sum, dir := runStat(t, config{url: srv.URL})
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}

	// The summary's quantiles must equal the live snapshot's (the same
	// interpolation over the same buckets, transported through text).
	var snap service.HistogramSnapshot
	for _, h := range reg.Histograms() {
		if h.Name() == "omsd_http_push_seconds" {
			snap = h.Snapshot()
		}
	}
	got := sum.Histograms["omsd_http_push_seconds"]
	if got.Count != 1000 {
		t.Fatalf("push count %d, want 1000", got.Count)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"p50", got.P50, snap.Quantile(0.50)},
		{"p95", got.P95, snap.Quantile(0.95)},
		{"p99", got.P99, snap.Quantile(0.99)},
	} {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want snapshot's %v", c.name, c.got, c.want)
		}
	}
	// Uniform (0, 1ms]: the p50 estimate must sit mid-range.
	if got.P50 < 0.3e-3 || got.P50 > 0.7e-3 {
		t.Errorf("p50 %v implausible for uniform (0,1ms]", got.P50)
	}

	g := sum.Gauges["omsd_queue_backlog"]
	if g.Last != 7 || g.P95 != 7 {
		t.Errorf("backlog gauge summary %+v, want constant 7", g)
	}
	c := sum.Counters["ops_total"]
	if c.Last-c.First != 20 { // 3 scrapes, +10 each, first reading after the first bump
		t.Errorf("counter first %v last %v, want growth of 20", c.First, c.Last)
	}
	if c.RatePerSec <= 0 {
		t.Errorf("counter rate %v, want > 0", c.RatePerSec)
	}

	// samples.csv: header + one row per scrape, no _bucket columns.
	f, err := os.Open(filepath.Join(dir, "samples.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("csv has %d rows, want header + 3 scrapes", len(rows))
	}
	if rows[0][0] != "ts_unix_ms" {
		t.Fatalf("csv header %v", rows[0])
	}
	for _, col := range rows[0] {
		if strings.HasSuffix(col, "_bucket") {
			t.Fatalf("csv leaked bucket column %q", col)
		}
	}
}

func TestThresholds(t *testing.T) {
	srv, _ := syntheticServer(t)

	// Generous bounds hold: push p99 under 5ms, backlog p95 under 100.
	ths, err := slo.ParseThresholds("push_p99_ms=5,backlog_p95=100")
	if err != nil {
		t.Fatal(err)
	}
	code, sum, _ := runStat(t, config{url: srv.URL, thresholds: ths})
	if code != 0 || !sum.OK {
		t.Fatalf("exit %d ok=%v, want passing thresholds", code, sum.OK)
	}
	if sum.Thresholds[0].Metric != "omsd_http_push_seconds" {
		t.Fatalf("push alias resolved to %q", sum.Thresholds[0].Metric)
	}

	// The 20ms fsync stall must blow a 5ms p99 bound and exit 1.
	ths, err = slo.ParseThresholds("fsync_p99_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	code, sum, _ = runStat(t, config{url: srv.URL, thresholds: ths})
	if code != 1 {
		t.Fatalf("exit %d, want 1 on violated threshold", code)
	}
	r := sum.Thresholds[0]
	if r.OK || r.Metric != "omsd_wal_fsync_seconds" || r.Value <= 5 {
		t.Fatalf("violation record %+v", r)
	}
}

func TestRequire(t *testing.T) {
	srv, _ := syntheticServer(t)
	code, sum, _ := runStat(t, config{url: srv.URL,
		require: []string{"omsd_http_push_seconds", "omsd_wal_fsync_seconds"}})
	if code != 0 || !sum.OK {
		t.Fatalf("exit %d, want 0 when required histograms are populated", code)
	}
	code, sum, _ = runStat(t, config{url: srv.URL, require: []string{"omsd_http_nope_seconds"}})
	if code != 1 || sum.OK {
		t.Fatalf("exit %d ok=%v, want 1 on missing required histogram", code, sum.OK)
	}
}

func TestNetworkError(t *testing.T) {
	code, _, _ := runStat(t, config{url: "http://127.0.0.1:1/metrics"})
	if code != 2 {
		t.Fatalf("exit %d, want 2 on unreachable endpoint", code)
	}
}

func TestParseThresholdErrors(t *testing.T) {
	for _, bad := range []string{"push_p99_ms", "push_p99_ms=abc"} {
		if _, err := slo.ParseThresholds(bad); err == nil {
			t.Errorf("ParseThresholds(%q) accepted a malformed spec", bad)
		}
	}
	srv, _ := syntheticServer(t)
	for _, badKey := range []string{"push=5", "push_p0_ms=5", "nosuch_p99=5"} {
		ths, err := slo.ParseThresholds(badKey)
		if err != nil {
			continue // rejected at parse time is fine too
		}
		if code, _, _ := runStat(t, config{url: srv.URL, thresholds: ths}); code != 2 {
			t.Errorf("threshold %q: exit %d, want 2 on unresolvable key", badKey, code)
		}
	}
}

// TestPartialRun interrupts the scrape loop after the first sample and
// expects the collected prefix to still land on disk, marked partial.
func TestPartialRun(t *testing.T) {
	srv, _ := syntheticServer(t)
	var hits atomic.Int32
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if _, err := io.Copy(w, resp.Body); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(gate.Close)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for hits.Load() == 0 { // cancel once at least one scrape landed
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	code, sum, dir := runStatCtx(t, ctx, config{
		url: gate.URL, samples: 10_000, interval: 5 * time.Millisecond,
	})
	if code != 0 {
		t.Fatalf("exit %d, want 0 for a clean partial run", code)
	}
	if sum == nil || !sum.Partial {
		t.Fatalf("summary %+v, want partial:true", sum)
	}
	if sum.Samples == 0 || sum.Samples >= 10_000 {
		t.Fatalf("partial run recorded %d samples", sum.Samples)
	}
	if _, err := os.Stat(filepath.Join(dir, "samples.csv")); err != nil {
		t.Fatalf("partial run did not flush samples.csv: %v", err)
	}
}

// TestInterruptBeforeFirstScrape: a context already cancelled means no
// data at all — that is exit 2, not a vacuous pass.
func TestInterruptBeforeFirstScrape(t *testing.T) {
	srv, _ := syntheticServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, _, _ := runStatCtx(t, ctx, config{url: srv.URL})
	if code != 2 {
		t.Fatalf("exit %d, want 2 when interrupted before any scrape", code)
	}
}

// TestWaitReady: -wait-ready must block on a 503 readyz and proceed
// once it flips to 200.
func TestWaitReady(t *testing.T) {
	srv, _ := syntheticServer(t)
	var ready atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		io.Copy(w, resp.Body)
	})
	gate := httptest.NewServer(mux)
	t.Cleanup(gate.Close)
	time.AfterFunc(60*time.Millisecond, func() { ready.Store(true) })

	code, sum, _ := runStat(t, config{url: gate.URL + "/metrics", waitReady: 5 * time.Second})
	if code != 0 || sum == nil || !sum.OK {
		t.Fatalf("exit %d, want 0 once readyz flips", code)
	}

	// An endpoint that never goes ready exhausts the budget with exit 2.
	ready.Store(false)
	code, _, _ = runStat(t, config{url: gate.URL + "/metrics", waitReady: 100 * time.Millisecond})
	if code != 2 {
		t.Fatalf("exit %d, want 2 on readiness timeout", code)
	}
}

// TestExemplarSlowTraces scrapes an OpenMetrics-negotiating endpoint
// whose fsync histogram carries a trace-id exemplar; the breached
// threshold must name that trace, and the summary must count exemplars.
func TestExemplarSlowTraces(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	reg := service.NewRegistry()
	fsync := reg.Histogram("omsd_wal_fsync_seconds", "fsync stall")
	fsync.ObserveExemplar(20*time.Millisecond, tid)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept"), "openmetrics") {
			t.Errorf("scrape did not ask for openmetrics (Accept %q)", r.Header.Get("Accept"))
		}
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		reg.WriteOpenMetrics(w)
	}))
	t.Cleanup(srv.Close)

	ths, err := slo.ParseThresholds("fsync_p99_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	code, sum, _ := runStat(t, config{url: srv.URL, thresholds: ths})
	if code != 1 || sum == nil {
		t.Fatalf("exit %d, want 1 on violated threshold", code)
	}
	if sum.Exemplars < 1 {
		t.Fatalf("summary counted %d exemplars, want >= 1", sum.Exemplars)
	}
	r := sum.Thresholds[0]
	if r.OK || len(r.SlowTraces) == 0 {
		t.Fatalf("violated threshold carries no slow traces: %+v", r)
	}
	if r.SlowTraces[0].TraceID != tid || r.SlowTraces[0].Seconds != 0.02 {
		t.Fatalf("slow trace = %+v, want %s at 0.02s", r.SlowTraces[0], tid)
	}
}
