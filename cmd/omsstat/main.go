// Command omsstat samples an omsd /metrics endpoint and turns the
// scrapes into an SLO verdict: a wide-format samples.csv (one row per
// scrape, one column per series), a summary.json with per-histogram
// p50/p95/p99 and per-gauge percentiles, and a nonzero exit when a
// -thresholds bound is violated or a -require'd histogram is missing
// or empty.
//
// Examples:
//
//	omsstat -url http://localhost:7600/metrics -samples 10 -interval 500ms -out stat/
//	omsstat -url http://localhost:7600/metrics -thresholds 'push_p99_ms<5,backlog_p95<100'
//	omsstat -url http://localhost:7600/metrics -require omsd_http_push_seconds,omsd_wal_fsync_seconds
//	omsstat -url http://localhost:7600/metrics -wait-ready 15s -samples 30 -interval 2s
//
// The threshold grammar (<metric>_p<NN>[_ms], shared with omsload via
// internal/slo) accepts both 'key<limit' and legacy 'key=limit'.
// SIGINT/SIGTERM ends the scrape loop early but still writes
// samples.csv and a summary.json marked "partial": true over whatever
// was collected.
//
// Exit codes: 0 all thresholds and requirements hold, 1 at least one
// violated, 2 usage or network error.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"oms/internal/load"
	"oms/internal/promtext"
	"oms/internal/slo"
)

func main() {
	var (
		url        = flag.String("url", "http://localhost:7600/metrics", "metrics endpoint to sample")
		interval   = flag.Duration("interval", 500*time.Millisecond, "delay between scrapes")
		samples    = flag.Int("samples", 5, "number of scrapes")
		out        = flag.String("out", ".", "directory for samples.csv and summary.json")
		thresholds = flag.String("thresholds", "", "comma-separated bounds, e.g. 'push_p99_ms<5,backlog_p95<100'")
		require    = flag.String("require", "", "comma-separated histogram names that must exist with count > 0")
		waitReady  = flag.Duration("wait-ready", 0, "poll the daemon's /v1/readyz with backoff up to this long before sampling (0 = skip)")
	)
	flag.Parse()

	cfg := config{
		url:       *url,
		interval:  *interval,
		samples:   *samples,
		outDir:    *out,
		waitReady: *waitReady,
		stdout:    os.Stdout,
		stderr:    os.Stderr,
	}
	var err error
	if cfg.thresholds, err = slo.ParseThresholds(*thresholds); err != nil {
		fmt.Fprintln(os.Stderr, "omsstat:", err)
		os.Exit(2)
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.require = append(cfg.require, name)
			}
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, cfg))
}

type config struct {
	url        string
	interval   time.Duration
	samples    int
	outDir     string
	thresholds []slo.Threshold
	require    []string
	waitReady  time.Duration
	client     *http.Client // nil = http.DefaultClient
	stdout     io.Writer
	stderr     io.Writer
}

// scrape is one polled exposition document with its wall-clock instant.
type scrape struct {
	at   time.Time
	fams map[string]promtext.Family
}

// summary is the summary.json document.
type summary struct {
	URL        string                  `json:"url"`
	Samples    int                     `json:"samples"`
	IntervalMS float64                 `json:"interval_ms"`
	Partial    bool                    `json:"partial,omitempty"`
	Histograms map[string]histoSummary `json:"histograms"`
	Gauges     map[string]gaugeSummary `json:"gauges"`
	Counters   map[string]ctrSummary   `json:"counters"`
	Exemplars  int                     `json:"exemplars"`
	Thresholds []thresholdResult       `json:"thresholds,omitempty"`
	Require    []requireResult         `json:"require,omitempty"`
	OK         bool                    `json:"ok"`
}

// thresholdResult is one threshold verdict, annotated — when the bound
// is breached and the metric's buckets carry exemplars — with the trace
// ids of the slowest exemplared observations, so the operator can jump
// straight from a violated p99 to GET /v1/traces/{id}.
type thresholdResult struct {
	slo.Result
	SlowTraces []slowTrace `json:"slow_traces,omitempty"`
}

// slowTrace is one exemplar reference: the trace id and the observed
// latency (seconds) that landed it in the bucket.
type slowTrace struct {
	TraceID string  `json:"trace_id"`
	Seconds float64 `json:"seconds"`
}

type histoSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// gaugeSummary aggregates one gauge series over the scrape sequence.
type gaugeSummary struct {
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	P95  float64 `json:"p95"`
	Last float64 `json:"last"`
}

// ctrSummary tracks a counter's growth across the scrape window.
type ctrSummary struct {
	First      float64 `json:"first"`
	Last       float64 `json:"last"`
	RatePerSec float64 `json:"rate_per_sec"`
}

type requireResult struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	OK    bool   `json:"ok"`
}

func run(ctx context.Context, cfg config) int {
	if cfg.samples < 1 || cfg.url == "" {
		fmt.Fprintln(cfg.stderr, "omsstat: need -url and -samples >= 1")
		return 2
	}
	client := cfg.client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.waitReady > 0 {
		base, err := load.ReadyBase(cfg.url)
		if err != nil {
			fmt.Fprintln(cfg.stderr, "omsstat:", err)
			return 2
		}
		if err := load.WaitReady(ctx, client, base, cfg.waitReady); err != nil {
			fmt.Fprintln(cfg.stderr, "omsstat:", err)
			return 2
		}
	}

	// A signal mid-loop stops sampling but not reporting: the scrapes
	// already collected still become samples.csv and a partial summary.
	partial := false
	scrapes := make([]scrape, 0, cfg.samples)
	for i := 0; i < cfg.samples; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(cfg.interval):
			}
		}
		if ctx.Err() != nil {
			partial = true
			break
		}
		sc, err := fetch(client, cfg.url)
		if err != nil {
			fmt.Fprintln(cfg.stderr, "omsstat:", err)
			return 2
		}
		scrapes = append(scrapes, sc)
	}
	if len(scrapes) == 0 {
		fmt.Fprintln(cfg.stderr, "omsstat: interrupted before the first scrape")
		return 2
	}

	if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
		fmt.Fprintln(cfg.stderr, "omsstat:", err)
		return 2
	}
	if err := writeCSV(filepath.Join(cfg.outDir, "samples.csv"), scrapes); err != nil {
		fmt.Fprintln(cfg.stderr, "omsstat:", err)
		return 2
	}

	sum, err := summarize(cfg, scrapes)
	if err != nil {
		fmt.Fprintln(cfg.stderr, "omsstat:", err)
		return 2
	}
	sum.Partial = partial
	if err := slo.WriteJSON(filepath.Join(cfg.outDir, "summary.json"), sum); err != nil {
		fmt.Fprintln(cfg.stderr, "omsstat:", err)
		return 2
	}

	report(cfg.stdout, sum)
	if !sum.OK {
		return 1
	}
	return 0
}

func fetch(client *http.Client, url string) (scrape, error) {
	at := time.Now()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return scrape{}, err
	}
	// Ask for OpenMetrics so histogram buckets carry trace-id exemplars;
	// a daemon that only speaks classic Prometheus text ignores this and
	// everything below still parses.
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := client.Do(req)
	if err != nil {
		return scrape{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return scrape{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		return scrape{}, fmt.Errorf("GET %s: %w", url, err)
	}
	sc := scrape{at: at, fams: make(map[string]promtext.Family, len(fams))}
	for _, f := range fams {
		sc.fams[f.Name] = f
	}
	return sc, nil
}

// writeCSV writes the wide-format sample table: ts_unix_ms plus one
// column per non-bucket series, the union over every scrape, sorted,
// empty cell where a series had not appeared yet.
func writeCSV(path string, scrapes []scrape) error {
	cols := map[string]bool{}
	for _, sc := range scrapes {
		for _, f := range sc.fams {
			for _, s := range f.Samples {
				if !strings.HasSuffix(s.Name, "_bucket") {
					cols[s.Name] = true
				}
			}
		}
	}
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	sort.Strings(names)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	w.Write(append([]string{"ts_unix_ms"}, names...))
	for _, sc := range scrapes {
		row := make([]string, 0, 1+len(names))
		row = append(row, strconv.FormatInt(sc.at.UnixMilli(), 10))
		vals := map[string]float64{}
		for _, fam := range sc.fams {
			for _, s := range fam.Samples {
				vals[s.Name] = s.Value
			}
		}
		for _, n := range names {
			if v, ok := vals[n]; ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		w.Write(row)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func summarize(cfg config, scrapes []scrape) (*summary, error) {
	last := scrapes[len(scrapes)-1]
	sum := &summary{
		URL:        cfg.url,
		Samples:    len(scrapes),
		IntervalMS: float64(cfg.interval) / float64(time.Millisecond),
		Histograms: map[string]histoSummary{},
		Gauges:     map[string]gaugeSummary{},
		Counters:   map[string]ctrSummary{},
		OK:         true,
	}
	// Histograms summarize the final scrape (cumulative state); gauges
	// and counters aggregate the whole sequence.
	hists := map[string]*promtext.Histogram{}
	for name, fam := range last.fams {
		switch fam.Type {
		case "histogram":
			h, err := fam.AsHistogram()
			if err != nil {
				return nil, err
			}
			hists[name] = h
			sum.Histograms[name] = histoSummary{
				Count: h.Count,
				Sum:   h.Sum,
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
			}
		case "gauge":
			for _, s := range fam.Samples {
				vals := seriesValues(scrapes, s.Name)
				sum.Gauges[s.Name] = gaugeSummary{
					Min:  sliceMin(vals),
					Max:  sliceMax(vals),
					Mean: sliceMean(vals),
					P95:  slo.Percentile(vals, 0.95),
					Last: vals[len(vals)-1],
				}
			}
		case "counter":
			for _, s := range fam.Samples {
				vals := seriesValues(scrapes, s.Name)
				c := ctrSummary{First: vals[0], Last: vals[len(vals)-1]}
				if window := last.at.Sub(scrapes[0].at).Seconds(); window > 0 {
					c.RatePerSec = (c.Last - c.First) / window
				}
				sum.Counters[s.Name] = c
			}
		}
	}

	for _, name := range cfg.require {
		r := requireResult{Name: name}
		if h, ok := hists[name]; ok {
			r.Count = h.Count
			r.OK = h.Count > 0
		}
		if !r.OK {
			sum.OK = false
		}
		sum.Require = append(sum.Require, r)
	}
	for _, fam := range last.fams {
		for _, s := range fam.Samples {
			if s.Exemplar != nil {
				sum.Exemplars++
			}
		}
	}
	for _, th := range cfg.thresholds {
		metric, value, err := resolve(th.Key, hists, scrapes)
		if err != nil {
			return nil, err
		}
		r := thresholdResult{Result: th.Check(metric, value)}
		if !r.OK {
			sum.OK = false
			r.SlowTraces = slowTraces(last.fams[metric], 3)
		}
		sum.Thresholds = append(sum.Thresholds, r)
	}
	return sum, nil
}

// slowTraces collects the metric's bucket exemplars, slowest first,
// deduplicated by trace id, capped at max. Empty when the scrape was
// classic Prometheus text or no exemplared observation landed yet.
func slowTraces(fam promtext.Family, max int) []slowTrace {
	var out []slowTrace
	seen := map[string]bool{}
	for _, s := range fam.Samples {
		if s.Exemplar == nil {
			continue
		}
		if tid := s.Exemplar.TraceID(); tid != "" && !seen[tid] {
			seen[tid] = true
			out = append(out, slowTrace{TraceID: tid, Seconds: s.Exemplar.Value})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// aliases maps the short stage names accepted in threshold keys to the
// metric series they stand for.
var aliases = map[string]string{
	"push":       "omsd_http_push_seconds",
	"batch":      "omsd_http_batch_seconds",
	"finish":     "omsd_http_finish_seconds",
	"refine":     "omsd_http_refine_seconds",
	"queue_wait": "omsd_queue_wait_seconds",
	"assign":     "omsd_assign_seconds",
	"append":     "omsd_wal_append_seconds",
	"fsync":      "omsd_wal_fsync_seconds",
	"backlog":    "omsd_queue_backlog",
	"runqueue":   "omsd_pool_runqueue",
}

// resolve turns a threshold key like push_p99_ms, fsync_p99_ms, or
// backlog_p95 into (metric name, statistic value) via the shared slo
// grammar. Histograms take the quantile from their buckets; anything
// else takes it over the per-scrape sampled values.
func resolve(key string, hists map[string]*promtext.Histogram, scrapes []scrape) (string, float64, error) {
	k, err := slo.ParseKey(key, aliases)
	if err != nil {
		return "", 0, err
	}
	var value float64
	if h, ok := hists[k.Metric]; ok {
		value = h.Quantile(k.Quantile)
	} else {
		vals := seriesValues(scrapes, k.Metric)
		if len(vals) == 0 {
			return "", 0, fmt.Errorf("threshold key %q: metric %s not present in any scrape", key, k.Metric)
		}
		value = slo.Percentile(vals, k.Quantile)
	}
	return k.Metric, k.Scale(value), nil
}

// seriesValues collects one series' value from every scrape it appears
// in, in scrape order.
func seriesValues(scrapes []scrape, name string) []float64 {
	var out []float64
	for _, sc := range scrapes {
		for _, fam := range sc.fams {
			for _, s := range fam.Samples {
				if s.Name == name {
					out = append(out, s.Value)
				}
			}
		}
	}
	return out
}

func sliceMin(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func sliceMax(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func sliceMean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// report prints the human-facing verdict: one line per threshold and
// requirement, then the overall result.
func report(w io.Writer, sum *summary) {
	for _, r := range sum.Require {
		status := "ok"
		if !r.OK {
			status = "MISSING"
		}
		fmt.Fprintf(w, "require %-36s count=%-8d %s\n", r.Name, r.Count, status)
	}
	for _, r := range sum.Thresholds {
		status := "ok"
		if !r.OK {
			status = "VIOLATED"
		}
		fmt.Fprintf(w, "threshold %-24s %s = %.4g (limit %.4g) %s\n", r.Key, r.Metric, r.Value, r.Limit, status)
		for _, st := range r.SlowTraces {
			fmt.Fprintf(w, "  slow trace %s (%.4gs)\n", st.TraceID, st.Seconds)
		}
	}
	switch {
	case sum.OK && sum.Partial:
		fmt.Fprintf(w, "omsstat: ok [partial] (%d scrapes, %d histograms)\n", sum.Samples, len(sum.Histograms))
	case sum.OK:
		fmt.Fprintf(w, "omsstat: ok (%d scrapes, %d histograms)\n", sum.Samples, len(sum.Histograms))
	default:
		fmt.Fprintf(w, "omsstat: FAILED\n")
	}
}
