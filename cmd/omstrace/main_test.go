package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oms/internal/trace"
)

// fixtureTrace builds a three-stage request trace: root http span, with
// queue and assign children, assign carrying an error.
func fixtureTrace(t *testing.T) trace.Trace {
	t.Helper()
	id, err := trace.ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	root := trace.Span{Name: "POST /v1/sessions/{id}/nodes", ID: trace.SpanID{1}, Start: start, Dur: 10 * time.Millisecond}
	return trace.Trace{
		ID: id, Root: root.Name, Status: 200, Start: start, Dur: root.Dur,
		Spans: []trace.Span{
			root,
			{Name: "queue", ID: trace.SpanID{2}, Parent: root.ID, Start: start.Add(time.Millisecond), Dur: 2 * time.Millisecond},
			{Name: "assign", ID: trace.SpanID{3}, Parent: root.ID, Start: start.Add(3 * time.Millisecond), Dur: 6 * time.Millisecond, Err: "boom"},
		},
	}
}

func fixtureServer(t *testing.T, tr trace.Trace) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		sum := trace.Summary{ID: tr.ID, Root: tr.Root, Status: tr.Status, Start: tr.Start, Dur: tr.Dur, Spans: len(tr.Spans)}
		json.NewEncoder(w).Encode(map[string]any{"traces": []trace.Summary{sum}})
	})
	mux.HandleFunc("GET /v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != tr.ID.String() {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(tr)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestWaterfallPrint(t *testing.T) {
	tr := fixtureTrace(t)
	srv := fixtureServer(t, tr)
	var out, errb strings.Builder
	code := run(config{base: srv.URL, ids: []string{tr.ID.String()}, stdout: &out, stderr: &errb})
	if code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"trace 4bf92f3577b34da6a3ce929d0e0e4736",
		"POST /v1/sessions/{id}/nodes",
		"queue", "assign", "err=boom", "status=200",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("waterfall missing %q:\n%s", want, got)
		}
	}
	// Children render indented one level under the root.
	if !strings.Contains(got, "\n    queue") {
		t.Errorf("queue span not indented under root:\n%s", got)
	}
}

func TestListFilters(t *testing.T) {
	tr := fixtureTrace(t)
	srv := fixtureServer(t, tr)

	var out strings.Builder
	if code := run(config{base: srv.URL, limit: 20, stdout: &out, stderr: &out}); code != 0 {
		t.Fatalf("list run = %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), tr.ID.String()) {
		t.Fatalf("index listing missing trace id:\n%s", out.String())
	}

	// min-dur above the trace's duration filters it out.
	out.Reset()
	if code := run(config{base: srv.URL, limit: 20, minDur: time.Second, stdout: &out, stderr: &out}); code != 0 {
		t.Fatalf("min-dur run = %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no traces matched") {
		t.Fatalf("min-dur filter kept the trace:\n%s", out.String())
	}

	// Stage filtering fetches the span tree: "assign" matches,
	// "wal.fsync" does not.
	out.Reset()
	if code := run(config{base: srv.URL, limit: 20, stage: "assign", stdout: &out, stderr: &out}); code != 0 || !strings.Contains(out.String(), tr.ID.String()) {
		t.Fatalf("stage=assign run = %d:\n%s", code, out.String())
	}
	out.Reset()
	if code := run(config{base: srv.URL, limit: 20, stage: "wal.fsync", stdout: &out, stderr: &out}); code != 0 || !strings.Contains(out.String(), "no traces matched") {
		t.Fatalf("stage=wal.fsync run = %d:\n%s", code, out.String())
	}

	// errors-only: status 200, no error → filtered.
	out.Reset()
	if code := run(config{base: srv.URL, limit: 20, errorsOnly: true, stdout: &out, stderr: &out}); code != 0 || !strings.Contains(out.String(), "no traces matched") {
		t.Fatalf("errors-only run = %d:\n%s", code, out.String())
	}
}

func TestFetchUnknownTrace(t *testing.T) {
	tr := fixtureTrace(t)
	srv := fixtureServer(t, tr)
	var out, errb strings.Builder
	code := run(config{base: srv.URL, ids: []string{"ffffffffffffffffffffffffffffffff"}, stdout: &out, stderr: &errb})
	if code != 1 {
		t.Fatalf("run = %d (want 1 for not-found), stderr %q", code, errb.String())
	}
	if !strings.Contains(errb.String(), "not found") {
		t.Fatalf("stderr %q missing not-found notice", errb.String())
	}
}
