// Command omstrace inspects an omsd trace recorder: it lists the
// recent-trace index (GET /v1/traces) or renders one trace's span tree
// (GET /v1/traces/{id}) as an indented waterfall, with per-span offsets
// and durations relative to the trace root.
//
// Examples:
//
//	omstrace -url http://localhost:8080                  # index, newest first
//	omstrace -url http://localhost:8080 -min-dur 10ms    # only slow traces
//	omstrace -url http://localhost:8080 -errors-only     # flight-recorder fodder
//	omstrace -url http://localhost:8080 -stage wal.fsync # traces touching fsync
//	omstrace -url http://localhost:8080 4bf92f3577b34da6a3ce929d0e0e4736
//
// With trace ids as arguments the filters are ignored and each trace is
// fetched and printed in full. Exit codes: 0 ok, 1 a requested trace was
// not found, 2 usage or network error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"oms/internal/trace"
)

func main() {
	var (
		url        = flag.String("url", "http://localhost:8080", "omsd base URL")
		minDur     = flag.Duration("min-dur", 0, "list only traces at least this long")
		stage      = flag.String("stage", "", "list only traces containing a span with this name (e.g. wal.fsync, refine.pass)")
		errorsOnly = flag.Bool("errors-only", false, "list only traces that failed (error recorded or HTTP status >= 500)")
		limit      = flag.Int("n", 20, "max traces listed")
	)
	flag.Parse()
	cfg := config{
		base:       strings.TrimRight(*url, "/"),
		minDur:     *minDur,
		stage:      *stage,
		errorsOnly: *errorsOnly,
		limit:      *limit,
		ids:        flag.Args(),
		stdout:     os.Stdout,
		stderr:     os.Stderr,
	}
	os.Exit(run(cfg))
}

type config struct {
	base       string
	minDur     time.Duration
	stage      string
	errorsOnly bool
	limit      int
	ids        []string
	client     *http.Client // nil = http.DefaultClient
	stdout     io.Writer
	stderr     io.Writer
}

func run(cfg config) int {
	if cfg.base == "" {
		fmt.Fprintln(cfg.stderr, "omstrace: need -url")
		return 2
	}
	if len(cfg.ids) > 0 {
		code := 0
		for i, id := range cfg.ids {
			tr, status, err := fetchTrace(cfg, id)
			switch {
			case err != nil:
				fmt.Fprintln(cfg.stderr, "omstrace:", err)
				return 2
			case status == http.StatusNotFound:
				fmt.Fprintf(cfg.stderr, "omstrace: trace %s not found (rotated out of the ring?)\n", id)
				code = 1
				continue
			case status != http.StatusOK:
				fmt.Fprintf(cfg.stderr, "omstrace: GET /v1/traces/%s: http %d\n", id, status)
				return 2
			}
			if i > 0 {
				fmt.Fprintln(cfg.stdout)
			}
			waterfall(cfg.stdout, tr)
		}
		return code
	}
	return list(cfg)
}

// list fetches the index, applies the filters, and prints one line per
// surviving trace, newest first.
func list(cfg config) int {
	sums, err := fetchIndex(cfg)
	if err != nil {
		fmt.Fprintln(cfg.stderr, "omstrace:", err)
		return 2
	}
	shown := 0
	for _, s := range sums {
		if cfg.limit > 0 && shown >= cfg.limit {
			break
		}
		if s.Dur < cfg.minDur {
			continue
		}
		if cfg.errorsOnly && s.Err == "" && s.Status < 500 {
			continue
		}
		if cfg.stage != "" {
			// Stage names live on spans, not summaries: resolve by
			// fetching the candidate. The index is small (ring-bounded),
			// so this stays a handful of requests.
			tr, status, err := fetchTrace(cfg, s.ID.String())
			if err != nil {
				fmt.Fprintln(cfg.stderr, "omstrace:", err)
				return 2
			}
			if status != http.StatusOK || !hasStage(tr, cfg.stage) {
				continue
			}
		}
		flight := ""
		if s.Flight {
			flight = "  [flight]"
		}
		fmt.Fprintf(cfg.stdout, "%s  %-36s status=%-3d dur=%-10s spans=%d%s\n",
			s.ID, s.Root, s.Status, s.Dur.Round(time.Microsecond), s.Spans, flight)
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(cfg.stdout, "omstrace: no traces matched")
	}
	return 0
}

func hasStage(tr trace.Trace, stage string) bool {
	for _, sp := range tr.Spans {
		if sp.Name == stage {
			return true
		}
	}
	return false
}

func fetchIndex(cfg config) ([]trace.Summary, error) {
	body, status, err := get(cfg, cfg.base+"/v1/traces")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/traces: http %d", status)
	}
	var out struct {
		Traces []trace.Summary `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("GET /v1/traces: %w", err)
	}
	return out.Traces, nil
}

func fetchTrace(cfg config, id string) (trace.Trace, int, error) {
	body, status, err := get(cfg, cfg.base+"/v1/traces/"+id)
	if err != nil || status != http.StatusOK {
		return trace.Trace{}, status, err
	}
	var tr trace.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		return trace.Trace{}, status, fmt.Errorf("GET /v1/traces/%s: %w", id, err)
	}
	return tr, status, nil
}

func get(cfg config, url string) ([]byte, int, error) {
	client := cfg.client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

// barWidth is the waterfall's time axis in character cells.
const barWidth = 40

// waterfall prints one trace as an indented span tree whose bars share
// a time axis spanning [trace start, trace start+dur].
func waterfall(w io.Writer, tr trace.Trace) {
	header := fmt.Sprintf("trace %s  %s  dur=%s", tr.ID, tr.Root, tr.Dur.Round(time.Microsecond))
	if tr.Status != 0 {
		header += fmt.Sprintf("  status=%d", tr.Status)
	}
	if tr.Flight {
		header += "  [flight]"
	}
	fmt.Fprintln(w, header)
	if tr.Err != "" {
		fmt.Fprintf(w, "  error: %s\n", tr.Err)
	}
	if len(tr.Spans) == 0 {
		return
	}

	// Children under their parent, siblings in start order; spans whose
	// parent never landed (ring pressure) fall back under the root.
	root := tr.Spans[0]
	children := map[trace.SpanID][]trace.Span{}
	known := map[trace.SpanID]bool{root.ID: true}
	for _, sp := range tr.Spans[1:] {
		known[sp.ID] = true
	}
	for _, sp := range tr.Spans[1:] {
		parent := sp.Parent
		if !known[parent] {
			parent = root.ID
		}
		children[parent] = append(children[parent], sp)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
	}

	var print func(sp trace.Span, depth int)
	print = func(sp trace.Span, depth int) {
		fmt.Fprintln(w, spanLine(tr, sp, depth))
		for _, kid := range children[sp.ID] {
			print(kid, depth+1)
		}
	}
	print(root, 0)
}

// spanLine renders one waterfall row: indented name, bar on the shared
// axis, then offset and duration.
func spanLine(tr trace.Trace, sp trace.Span, depth int) string {
	name := strings.Repeat("  ", depth) + sp.Name
	total := tr.Dur
	if total <= 0 {
		total = 1
	}
	off := sp.Start.Sub(tr.Start)
	if off < 0 {
		off = 0
	}
	lead := int(int64(off) * barWidth / int64(total))
	span := int(int64(sp.Dur) * barWidth / int64(total))
	if lead >= barWidth {
		lead = barWidth - 1
	}
	if span < 1 {
		span = 1
	}
	if lead+span > barWidth {
		span = barWidth - lead
	}
	bar := strings.Repeat(" ", lead) + strings.Repeat("=", span) +
		strings.Repeat(" ", barWidth-lead-span)
	line := fmt.Sprintf("  %-24s |%s| +%-10s %s",
		name, bar, off.Round(time.Microsecond), sp.Dur.Round(time.Microsecond))
	if sp.Err != "" {
		line += "  err=" + sp.Err
	}
	return line
}
