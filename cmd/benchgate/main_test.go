package main

import (
	"strings"
	"testing"

	"oms/internal/bench"
)

func TestGateVerdicts(t *testing.T) {
	g := &gate{cutTol: 0.05, speedTol: 0.20, minRuntime: 0.001}

	// Within tolerance on both axes.
	g.compare("a", "x", 1000, 1040, 1e6, 0.9e6, 0.01)
	if len(g.failures) != 0 {
		t.Fatalf("in-tolerance row failed: %v", g.failures)
	}
	// Edge cut beyond 5% (+ absolute slack).
	g.compare("a", "x", 1000, 1100, 1e6, 1e6, 0.01)
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "edge cut") {
		t.Fatalf("cut regression not caught: %v", g.failures)
	}
	// Throughput drop beyond 20% on a gated (>= min runtime) row.
	g.compare("a", "x", 1000, 1000, 1e6, 0.7e6, 0.01)
	if len(g.failures) != 2 || !strings.Contains(g.failures[1], "nodes/s") {
		t.Fatalf("throughput regression not caught: %v", g.failures)
	}
	// The same drop on a sub-min-runtime row is informational only.
	g.compare("a", "x", 1000, 1000, 1e6, 0.7e6, 0.0001)
	if len(g.failures) != 2 {
		t.Fatalf("noisy row gated: %v", g.failures)
	}
	// Tiny cuts ride on the absolute slack (single-edge jitter).
	g.compare("a", "x", 10, 20, 1e6, 1e6, 0.01)
	if len(g.failures) != 2 {
		t.Fatalf("tiny-cut jitter gated: %v", g.failures)
	}
	// A missing row is a failure, not a silent pass.
	g.missing("a/x")
	if len(g.failures) != 3 {
		t.Fatalf("missing row not caught: %v", g.failures)
	}
}

func TestLoadGate(t *testing.T) {
	base := &bench.LoadSection{
		Profile: "smoke_1k",
		Classes: []bench.LoadPerf{
			{Class: "push", Requests: 400, P99Ms: 20},
			{Class: "status", Requests: 100, P99Ms: 0.4}, // sub-ms baseline
		},
	}
	newGate := func() *gate { return &gate{cutTol: 0.05, speedTol: 0.20, minRuntime: 0.001} }
	check := func(g *gate, fresh *bench.LoadSection) { g.checkLoad(base, fresh, 0.50, 1.0, 0.05) }

	// Within tolerance on every axis.
	g := newGate()
	check(g, &bench.LoadSection{Profile: "smoke_1k", Classes: []bench.LoadPerf{
		{Class: "push", Requests: 410, Errors: 2, P99Ms: 25},
		{Class: "status", Requests: 90, P99Ms: 0.9},
	}})
	if len(g.failures) != 0 {
		t.Fatalf("in-tolerance load run failed: %v", g.failures)
	}

	// p99 beyond 50% (+1ms slack) on a gated class fails.
	g = newGate()
	check(g, &bench.LoadSection{Profile: "smoke_1k", Classes: []bench.LoadPerf{
		{Class: "push", Requests: 400, P99Ms: 40},
		{Class: "status", Requests: 100, P99Ms: 0.5},
	}})
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "p99") {
		t.Fatalf("p99 regression not caught: %v", g.failures)
	}

	// The same blowup on a sub-ms baseline class is informational.
	g = newGate()
	check(g, &bench.LoadSection{Profile: "smoke_1k", Classes: []bench.LoadPerf{
		{Class: "push", Requests: 400, P99Ms: 20},
		{Class: "status", Requests: 100, P99Ms: 50},
	}})
	if len(g.failures) != 0 {
		t.Fatalf("sub-ms baseline class gated: %v", g.failures)
	}

	// Hard errors over the 5% budget fail even with fine latency.
	g = newGate()
	check(g, &bench.LoadSection{Profile: "smoke_1k", Classes: []bench.LoadPerf{
		{Class: "push", Requests: 400, Errors: 40, P99Ms: 20},
		{Class: "status", Requests: 100, P99Ms: 0.5},
	}})
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "hard errors") {
		t.Fatalf("error budget not enforced: %v", g.failures)
	}

	// A class present in the baseline but absent from the fresh run fails.
	g = newGate()
	check(g, &bench.LoadSection{Profile: "smoke_1k", Classes: []bench.LoadPerf{
		{Class: "push", Requests: 400, P99Ms: 20},
	}})
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "missing") {
		t.Fatalf("missing class not caught: %v", g.failures)
	}

	// Profile mismatch refuses to compare at all.
	g = newGate()
	check(g, &bench.LoadSection{Profile: "heavy_10k", Classes: []bench.LoadPerf{
		{Class: "push", Requests: 400, P99Ms: 20},
		{Class: "status", Requests: 100, P99Ms: 0.5},
	}})
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "profile mismatch") {
		t.Fatalf("profile mismatch not caught: %v", g.failures)
	}

	// A partial fresh run cannot gate.
	g = newGate()
	check(g, &bench.LoadSection{Profile: "smoke_1k", Partial: true, Classes: []bench.LoadPerf{
		{Class: "push", Requests: 10, P99Ms: 20},
		{Class: "status", Requests: 5, P99Ms: 0.5},
	}})
	if len(g.failures) == 0 || !strings.Contains(g.failures[0], "partial") {
		t.Fatalf("partial run not rejected: %v", g.failures)
	}

	// No committed baseline: informational, except the error budget.
	g = newGate()
	g.checkLoad(nil, &bench.LoadSection{Profile: "smoke_1k", Classes: []bench.LoadPerf{
		{Class: "push", Requests: 400, Errors: 100, P99Ms: 9999},
	}}, 0.50, 1.0, 0.05)
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "hard errors") {
		t.Fatalf("baseline-free gating wrong: %v", g.failures)
	}

	// A snapshot with no load_results at all fails loudly.
	g = newGate()
	g.checkLoad(base, nil, 0.50, 1.0, 0.05)
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "no load_results") {
		t.Fatalf("missing section not caught: %v", g.failures)
	}
}

func TestRefineInvariant(t *testing.T) {
	g := &gate{cutTol: 0.05, speedTol: 0.20, minRuntime: 0.001}

	// Monotone sweep: fine.
	g.checkRefineInvariant([]bench.RefinePerf{
		{Instance: "a", Passes: 0, EdgeCut: 1000},
		{Instance: "a", Passes: 1, EdgeCut: 900},
		{Instance: "a", Passes: 2, EdgeCut: 880},
	})
	if len(g.failures) != 0 {
		t.Fatalf("monotone sweep failed: %v", g.failures)
	}
	// A refined cut above the one-pass baseline fails.
	g.checkRefineInvariant([]bench.RefinePerf{
		{Instance: "b", Passes: 0, EdgeCut: 1000},
		{Instance: "b", Passes: 1, EdgeCut: 1001},
	})
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "worse than one-pass") {
		t.Fatalf("refined regression not caught: %v", g.failures)
	}
	// Refined rows without a baseline fail rather than silently pass.
	g.checkRefineInvariant([]bench.RefinePerf{{Instance: "c", Passes: 1, EdgeCut: 10}})
	if len(g.failures) != 2 || !strings.Contains(g.failures[1], "baseline") {
		t.Fatalf("missing baseline not caught: %v", g.failures)
	}
}
