package main

import (
	"strings"
	"testing"

	"oms/internal/bench"
)

func TestGateVerdicts(t *testing.T) {
	g := &gate{cutTol: 0.05, speedTol: 0.20, minRuntime: 0.001}

	// Within tolerance on both axes.
	g.compare("a", "x", 1000, 1040, 1e6, 0.9e6, 0.01)
	if len(g.failures) != 0 {
		t.Fatalf("in-tolerance row failed: %v", g.failures)
	}
	// Edge cut beyond 5% (+ absolute slack).
	g.compare("a", "x", 1000, 1100, 1e6, 1e6, 0.01)
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "edge cut") {
		t.Fatalf("cut regression not caught: %v", g.failures)
	}
	// Throughput drop beyond 20% on a gated (>= min runtime) row.
	g.compare("a", "x", 1000, 1000, 1e6, 0.7e6, 0.01)
	if len(g.failures) != 2 || !strings.Contains(g.failures[1], "nodes/s") {
		t.Fatalf("throughput regression not caught: %v", g.failures)
	}
	// The same drop on a sub-min-runtime row is informational only.
	g.compare("a", "x", 1000, 1000, 1e6, 0.7e6, 0.0001)
	if len(g.failures) != 2 {
		t.Fatalf("noisy row gated: %v", g.failures)
	}
	// Tiny cuts ride on the absolute slack (single-edge jitter).
	g.compare("a", "x", 10, 20, 1e6, 1e6, 0.01)
	if len(g.failures) != 2 {
		t.Fatalf("tiny-cut jitter gated: %v", g.failures)
	}
	// A missing row is a failure, not a silent pass.
	g.missing("a/x")
	if len(g.failures) != 3 {
		t.Fatalf("missing row not caught: %v", g.failures)
	}
}

func TestRefineInvariant(t *testing.T) {
	g := &gate{cutTol: 0.05, speedTol: 0.20, minRuntime: 0.001}

	// Monotone sweep: fine.
	g.checkRefineInvariant([]bench.RefinePerf{
		{Instance: "a", Passes: 0, EdgeCut: 1000},
		{Instance: "a", Passes: 1, EdgeCut: 900},
		{Instance: "a", Passes: 2, EdgeCut: 880},
	})
	if len(g.failures) != 0 {
		t.Fatalf("monotone sweep failed: %v", g.failures)
	}
	// A refined cut above the one-pass baseline fails.
	g.checkRefineInvariant([]bench.RefinePerf{
		{Instance: "b", Passes: 0, EdgeCut: 1000},
		{Instance: "b", Passes: 1, EdgeCut: 1001},
	})
	if len(g.failures) != 1 || !strings.Contains(g.failures[0], "worse than one-pass") {
		t.Fatalf("refined regression not caught: %v", g.failures)
	}
	// Refined rows without a baseline fail rather than silently pass.
	g.checkRefineInvariant([]bench.RefinePerf{{Instance: "c", Passes: 1, EdgeCut: 10}})
	if len(g.failures) != 2 || !strings.Contains(g.failures[1], "baseline") {
		t.Fatalf("missing baseline not caught: %v", g.failures)
	}
}
