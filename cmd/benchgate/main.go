// Command benchgate is the CI perf-regression gate: it compares a
// freshly measured omsbench -json snapshot against the committed
// BENCH_oms.json baseline and fails (exit 1) when quality or throughput
// regressed beyond tolerance.
//
//	benchgate -old BENCH_oms.json -new BENCH_new.json
//	benchgate -old BENCH_oms.json -new-load BENCH_load.json
//
// Gates, per matched row (instance × algorithm, and instance × threads
// for the batch-ingest scenario):
//
//   - edge cut worse than -cut-tol (default 5%) fails;
//   - nodes/s lower than -speed-tol (default 20%) fails, but only for
//     rows whose baseline runtime is at least -min-runtime (default
//     1ms) — sub-millisecond rows are timing noise on shared runners
//     and are reported informationally instead;
//   - a row present in the baseline but missing from the fresh
//     snapshot fails (silent coverage loss reads as a pass otherwise).
//
// -new-load adds the live-load gate over the snapshot's load_results
// section (written by omsload -bench-json): the fresh run must use the
// baseline's profile, carry every baseline class, keep hard errors
// under -load-err-tol, and keep each class's client p99 within
// -load-p99-tol of the committed baseline — classes whose baseline p99
// is under -load-min-p99-ms are informational (client-side sub-ms
// latencies are runner noise). Without -new-load the load gate is
// skipped entirely, so the offline bench job never depends on a live
// daemon.
//
// The full side-by-side table is always printed, so the job log shows
// the trajectory even when the gate passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"oms/internal/bench"
)

func main() {
	var (
		oldPath        = flag.String("old", "BENCH_oms.json", "committed baseline snapshot")
		newPath        = flag.String("new", "", "freshly measured snapshot")
		cutTol         = flag.Float64("cut-tol", 0.05, "allowed relative edge-cut worsening")
		speedTol       = flag.Float64("speed-tol", 0.20, "allowed relative nodes/s drop")
		minRuntime     = flag.Duration("min-runtime", time.Millisecond, "baseline runtime below which throughput is informational only")
		adaptiveCutTol = flag.Float64("adaptive-cut-tol", 0.10, "allowed adaptive-over-declared edge-cut overshoot (within one snapshot)")
		newLoadPath    = flag.String("new-load", "", "fresh snapshot carrying load_results (omsload -bench-json output); enables the load gate")
		loadP99Tol     = flag.Float64("load-p99-tol", 0.50, "allowed relative client-p99 worsening per load class")
		loadMinP99     = flag.Float64("load-min-p99-ms", 1.0, "baseline class p99 (ms) below which the load gate is informational only")
		loadErrTol     = flag.Float64("load-err-tol", 0.05, "allowed hard-error fraction per load class in the fresh run")
	)
	flag.Parse()
	if *newPath == "" && *newLoadPath == "" {
		fatal(fmt.Errorf("-new (and/or -new-load) is required"))
	}
	oldSnap, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}

	g := &gate{cutTol: *cutTol, speedTol: *speedTol, minRuntime: minRuntime.Seconds()}

	if *newPath != "" {
		newSnap, err := load(*newPath)
		if err != nil {
			fatal(err)
		}
		gateOffline(g, oldSnap, newSnap, *oldPath, *newPath, *cutTol, *speedTol, *adaptiveCutTol)
	}
	if *newLoadPath != "" {
		loadSnap, err := load(*newLoadPath)
		if err != nil {
			fatal(err)
		}
		g.checkLoad(oldSnap.Load, loadSnap.Load, *loadP99Tol, *loadMinP99, *loadErrTol)
	}

	if len(g.failures) > 0 {
		fmt.Printf("\nbenchgate: FAIL — %d regression(s):\n", len(g.failures))
		for _, f := range g.failures {
			fmt.Println("  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: ok")
}

// gateOffline runs the original snapshot-vs-snapshot comparisons over
// the offline bench scenarios.
func gateOffline(g *gate, oldSnap, newSnap *bench.PerfSnapshot, oldPath, newPath string, cutTol, speedTol, adaptiveCutTol float64) {
	if oldSnap.Scale != newSnap.Scale || oldSnap.K != newSnap.K {
		fatal(fmt.Errorf("snapshots disagree on the shared config: old scale=%g k=%d, new scale=%g k=%d",
			oldSnap.Scale, oldSnap.K, newSnap.Scale, newSnap.K))
	}
	fmt.Printf("benchgate: %s vs %s (scale %g, k %d; cut tol %.0f%%, speed tol %.0f%%)\n\n",
		oldPath, newPath, newSnap.Scale, newSnap.K, cutTol*100, speedTol*100)

	fmt.Printf("%-16s %-10s %12s %12s %7s %12s %12s %7s  %s\n",
		"instance", "algorithm", "cut(old)", "cut(new)", "Δcut", "nps(old)", "nps(new)", "Δnps", "status")
	newRows := make(map[string]bench.PerfResult, len(newSnap.Results))
	for _, r := range newSnap.Results {
		newRows[r.Instance+"/"+r.Algorithm] = r
	}
	for _, o := range oldSnap.Results {
		n, ok := newRows[o.Instance+"/"+o.Algorithm]
		if !ok {
			g.missing(o.Instance + "/" + o.Algorithm)
			continue
		}
		g.compare(o.Instance, o.Algorithm, o.EdgeCut, n.EdgeCut, o.NodesPerSec, n.NodesPerSec, o.RuntimeSec)
	}

	if len(oldSnap.BatchResults) > 0 {
		fmt.Printf("\n%-16s %-10s %12s %12s %7s %12s %12s %7s  %s\n",
			"instance", "threads", "cut(old)", "cut(new)", "Δcut", "nps(old)", "nps(new)", "Δnps", "status")
		newBatch := make(map[string]bench.BatchPerf, len(newSnap.BatchResults))
		for _, r := range newSnap.BatchResults {
			newBatch[fmt.Sprintf("%s/t%d", r.Instance, r.Threads)] = r
		}
		for _, o := range oldSnap.BatchResults {
			key := fmt.Sprintf("%s/t%d", o.Instance, o.Threads)
			n, ok := newBatch[key]
			if !ok {
				g.missing(key)
				continue
			}
			g.compare(o.Instance, fmt.Sprintf("t=%d", o.Threads), o.EdgeCut, n.EdgeCut, o.NodesPerSec, n.NodesPerSec, o.RuntimeSec)
		}
	}

	if len(oldSnap.RefineResults) > 0 || len(newSnap.RefineResults) > 0 {
		fmt.Printf("\n%-16s %-10s %12s %12s %7s %12s %12s %7s  %s\n",
			"instance", "passes", "cut(old)", "cut(new)", "Δcut", "nps(old)", "nps(new)", "Δnps", "status")
		newRefine := make(map[string]bench.RefinePerf, len(newSnap.RefineResults))
		for _, r := range newSnap.RefineResults {
			newRefine[fmt.Sprintf("%s/p%d", r.Instance, r.Passes)] = r
		}
		for _, o := range oldSnap.RefineResults {
			key := fmt.Sprintf("%s/p%d", o.Instance, o.Passes)
			n, ok := newRefine[key]
			if !ok {
				g.missing(key)
				continue
			}
			// Refinement rows gate on quality only: a pass is an O(m)
			// replay whose runtime is dominated by instance size, and
			// the sweep's cut trajectory is the committed promise.
			g.compare(o.Instance, fmt.Sprintf("p=%d", o.Passes), o.EdgeCut, n.EdgeCut, 0, 0, 0)
		}
		g.checkRefineInvariant(newSnap.RefineResults)
	}

	if len(oldSnap.AdaptiveResults) > 0 || len(newSnap.AdaptiveResults) > 0 {
		fmt.Printf("\n%-16s %12s %12s %7s %10s %11s  %s\n",
			"instance", "cut(decl)", "cut(adpt)", "ratio", "imb(adpt)", "balance_ok", "status")
		newAdaptive := make(map[string]bench.AdaptivePerf, len(newSnap.AdaptiveResults))
		for _, r := range newSnap.AdaptiveResults {
			newAdaptive[r.Instance] = r
		}
		for _, o := range oldSnap.AdaptiveResults {
			n, ok := newAdaptive[o.Instance]
			if !ok {
				g.missing(o.Instance + "/adaptive")
				continue
			}
			// Across snapshots the adaptive cut gates like every other
			// quality row.
			if float64(n.AdaptiveCut) > float64(o.AdaptiveCut)*(1+g.cutTol)+16 {
				g.failures = append(g.failures, fmt.Sprintf("%s adaptive: edge cut %d -> %d (tol %.0f%%)",
					o.Instance, o.AdaptiveCut, n.AdaptiveCut, g.cutTol*100))
			}
		}
		// Within the fresh snapshot the acceptance envelope holds
		// unconditionally: adaptive within adaptive-cut-tol of the
		// declared twin, and balanced within twice the epsilon slack.
		for _, r := range newSnap.AdaptiveResults {
			status := "ok"
			if float64(r.AdaptiveCut) > float64(r.DeclaredCut)*(1+adaptiveCutTol)+16 {
				status = "FAIL cut"
				g.failures = append(g.failures, fmt.Sprintf("%s adaptive: cut %d beyond %.0f%% of declared %d",
					r.Instance, r.AdaptiveCut, adaptiveCutTol*100, r.DeclaredCut))
			}
			if !r.BalanceOK {
				if status == "ok" {
					status = "FAIL balance"
				} else {
					status += "+balance"
				}
				g.failures = append(g.failures, fmt.Sprintf("%s adaptive: imbalance %.4f outside the 2x-epsilon envelope",
					r.Instance, r.AdaptiveImb))
			}
			fmt.Printf("%-16s %12d %12d %6.2fx %10.4f %11v  %s\n",
				r.Instance, r.DeclaredCut, r.AdaptiveCut, r.CutRatio, r.AdaptiveImb, r.BalanceOK, status)
		}
	}

	g.checkWire(oldSnap.WireResults, newSnap.WireResults)
	g.checkTracing(oldSnap.TraceResults, newSnap.TraceResults)
}

// traceAllocFloor is the tracing contract, held unconditionally within
// every fresh snapshot: a sampled-out request's walk through the
// recorder (Start decline + nil-safe span calls + finish) allocates
// nothing, epsilon aside — every request on every route pays this path.
const traceAllocFloor = 0.05

// checkTracing gates the request-tracing overhead scenario: the section
// must not silently disappear, the unsampled row must hold the
// zero-alloc floor, and neither mode's throughput may regress against
// the committed baseline beyond the shared speed tolerance.
func (g *gate) checkTracing(old, fresh []bench.TracePerf) {
	if len(fresh) == 0 {
		g.failures = append(g.failures, "trace: fresh snapshot has no trace_results section")
		return
	}
	fmt.Printf("\n%-16s %12s %12s %7s %11s  %s\n",
		"trace mode", "rps(old)", "rps(new)", "Δrps", "allocs/op", "status")
	oldRows := make(map[string]bench.TracePerf, len(old))
	for _, r := range old {
		oldRows[r.Mode] = r
	}
	freshModes := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		freshModes[r.Mode] = true
		status := "ok"
		if r.Mode == "unsampled" && r.AllocsPerOp > traceAllocFloor {
			status = "FAIL allocs"
			g.failures = append(g.failures, fmt.Sprintf("trace/unsampled: %.3f allocs/op breaks the zero-alloc floor (%.2f)",
				r.AllocsPerOp, traceAllocFloor))
		}
		o, hasBase := oldRows[r.Mode]
		if hasBase && o.RuntimeSec >= g.minRuntime && r.OpsPerSec < o.OpsPerSec*(1-g.speedTol) {
			if status == "ok" {
				status = "FAIL rps"
			} else {
				status += "+rps"
			}
			g.failures = append(g.failures, fmt.Sprintf("trace/%s: req/s %.0f -> %.0f (tol %.0f%%)",
				r.Mode, o.OpsPerSec, r.OpsPerSec, g.speedTol*100))
		}
		fmt.Printf("%-16s %12.0f %12.0f %6.1f%% %11.3f  %s\n",
			r.Mode, o.OpsPerSec, r.OpsPerSec, rel(r.OpsPerSec, o.OpsPerSec)*100, r.AllocsPerOp, status)
	}
	for mode := range oldRows {
		if !freshModes[mode] {
			g.missing("trace/" + mode)
		}
	}
}

// wireAllocFloor and wireSpeedupFloor are the wire-v2 contract, held
// unconditionally within every fresh snapshot: the binary ingest path
// stays allocation-free (a small epsilon absorbs one-time arena and
// buffer growth amortized over the stream) and beats the NDJSON
// transcoding shim by at least 2x.
const (
	wireAllocFloor   = 0.05
	wireSpeedupFloor = 2.0
)

// checkWire gates the ingest-codec scenario: the section must not
// silently disappear, binary rows must hold the zero-alloc floor and
// the 2x-over-NDJSON speedup floor, and throughput must not regress
// against the committed baseline beyond the shared speed tolerance.
func (g *gate) checkWire(old, fresh []bench.WirePerf) {
	if len(fresh) == 0 {
		g.failures = append(g.failures, "wire: fresh snapshot has no wire_results section")
		return
	}
	fmt.Printf("\n%-16s %-8s %12s %12s %7s %11s %8s  %s\n",
		"instance", "format", "nps(old)", "nps(new)", "Δnps", "allocs/op", "speedup", "status")
	oldRows := make(map[string]bench.WirePerf, len(old))
	for _, r := range old {
		oldRows[r.Instance+"/"+r.Format] = r
	}
	freshKeys := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		freshKeys[r.Instance+"/"+r.Format] = true
		status := "ok"
		if r.Format == "wire" {
			if r.AllocsPerOp > wireAllocFloor {
				status = "FAIL allocs"
				g.failures = append(g.failures, fmt.Sprintf("wire/%s: binary push %.3f allocs/op breaks the zero-alloc floor (%.2f)",
					r.Instance, r.AllocsPerOp, wireAllocFloor))
			}
			if r.Speedup < wireSpeedupFloor {
				if status == "ok" {
					status = "FAIL speedup"
				} else {
					status += "+speedup"
				}
				g.failures = append(g.failures, fmt.Sprintf("wire/%s: binary only %.2fx over ndjson (floor %.1fx)",
					r.Instance, r.Speedup, wireSpeedupFloor))
			}
		}
		o, hasBase := oldRows[r.Instance+"/"+r.Format]
		if hasBase && o.RuntimeSec >= g.minRuntime && r.NodesPerSec < o.NodesPerSec*(1-g.speedTol) {
			if status == "ok" {
				status = "FAIL nps"
			} else {
				status += "+nps"
			}
			g.failures = append(g.failures, fmt.Sprintf("wire/%s %s: nodes/s %.0f -> %.0f (tol %.0f%%)",
				r.Instance, r.Format, o.NodesPerSec, r.NodesPerSec, g.speedTol*100))
		}
		fmt.Printf("%-16s %-8s %12.0f %12.0f %6.1f%% %11.3f %7.2fx  %s\n",
			r.Instance, r.Format, o.NodesPerSec, r.NodesPerSec, rel(r.NodesPerSec, o.NodesPerSec)*100,
			r.AllocsPerOp, r.Speedup, status)
	}
	for key := range oldRows {
		if !freshKeys[key] {
			g.missing("wire/" + key)
		}
	}
}

// gate accumulates row comparisons and their verdicts.
type gate struct {
	cutTol     float64
	speedTol   float64
	minRuntime float64
	failures   []string
}

func (g *gate) missing(key string) {
	g.failures = append(g.failures, fmt.Sprintf("%s: present in baseline, missing from fresh snapshot", key))
}

func (g *gate) compare(instance, variant string, oldCut, newCut int64, oldNPS, newNPS, oldSecs float64) {
	dCut := rel(float64(newCut), float64(oldCut))
	dNPS := rel(newNPS, oldNPS)
	status := "ok"
	// Small absolute slack keeps near-zero cuts from tripping on
	// single-edge jitter.
	if float64(newCut) > float64(oldCut)*(1+g.cutTol)+16 {
		status = "FAIL cut"
		g.failures = append(g.failures, fmt.Sprintf("%s %s: edge cut %d -> %d (%+.1f%%, tol %.0f%%)",
			instance, variant, oldCut, newCut, dCut*100, g.cutTol*100))
	}
	if oldSecs >= g.minRuntime {
		if newNPS < oldNPS*(1-g.speedTol) {
			if status == "ok" {
				status = "FAIL nps"
			} else {
				status += "+nps"
			}
			g.failures = append(g.failures, fmt.Sprintf("%s %s: nodes/s %.0f -> %.0f (%+.1f%%, tol %.0f%%)",
				instance, variant, oldNPS, newNPS, dNPS*100, g.speedTol*100))
		}
	} else if status == "ok" {
		status = "ok (nps info)"
	}
	fmt.Printf("%-16s %-10s %12d %12d %6.1f%% %12.0f %12.0f %6.1f%%  %s\n",
		instance, variant, oldCut, newCut, dCut*100, oldNPS, newNPS, dNPS*100, status)
}

// checkLoad gates the live-load scenario: the fresh load_results (from
// omsload -bench-json) against the committed baseline. Error budgets
// and run completeness are enforced unconditionally; p99 comparisons
// need a baseline and skip sub-ms classes (client-side timing noise on
// shared runners).
func (g *gate) checkLoad(old, fresh *bench.LoadSection, p99Tol, minP99Ms, errTol float64) {
	if fresh == nil {
		g.failures = append(g.failures, "load: -new-load snapshot has no load_results section")
		return
	}
	if fresh.Partial {
		g.failures = append(g.failures, fmt.Sprintf("load: fresh %s run is partial — an interrupted run cannot gate", fresh.Profile))
	}
	if old != nil && old.Profile != fresh.Profile {
		g.failures = append(g.failures, fmt.Sprintf("load: profile mismatch — baseline ran %q, fresh ran %q (apples to apples only)",
			old.Profile, fresh.Profile))
		return
	}
	if old == nil {
		fmt.Printf("\nload_results (%s): no committed baseline — p99s informational\n", fresh.Profile)
	} else {
		fmt.Printf("\nload_results (%s; p99 tol %.0f%%, err tol %.0f%%)\n", fresh.Profile, p99Tol*100, errTol*100)
	}
	fmt.Printf("%-10s %8s %6s %12s %12s %7s  %s\n",
		"class", "requests", "errors", "p99(old)ms", "p99(new)ms", "Δp99", "status")

	oldClasses := map[string]bench.LoadPerf{}
	if old != nil {
		for _, c := range old.Classes {
			oldClasses[c.Class] = c
		}
	}
	for _, n := range fresh.Classes {
		status := "ok"
		if n.Requests > 0 && float64(n.Errors) > errTol*float64(n.Requests) {
			status = "FAIL err"
			g.failures = append(g.failures, fmt.Sprintf("load/%s: %d hard errors in %d requests (budget %.0f%%)",
				n.Class, n.Errors, n.Requests, errTol*100))
		}
		o, hasBase := oldClasses[n.Class]
		oldP99 := 0.0
		if hasBase {
			oldP99 = o.P99Ms
			switch {
			case o.P99Ms < minP99Ms:
				if status == "ok" {
					status = "ok (p99 info)"
				}
			case n.P99Ms > o.P99Ms*(1+p99Tol)+minP99Ms:
				if status == "ok" {
					status = "FAIL p99"
				} else {
					status += "+p99"
				}
				g.failures = append(g.failures, fmt.Sprintf("load/%s: client p99 %.2fms -> %.2fms (tol %.0f%%)",
					n.Class, o.P99Ms, n.P99Ms, p99Tol*100))
			}
		}
		fmt.Printf("%-10s %8d %6d %12.2f %12.2f %6.1f%%  %s\n",
			n.Class, n.Requests, n.Errors, oldP99, n.P99Ms, rel(n.P99Ms, oldP99)*100, status)
	}

	if old != nil {
		freshClasses := map[string]bool{}
		for _, c := range fresh.Classes {
			freshClasses[c.Class] = true
		}
		for _, o := range old.Classes {
			if !freshClasses[o.Class] {
				g.missing("load/" + o.Class)
			}
		}
	}
}

// checkRefineInvariant enforces the within-snapshot promise of the
// refinement subsystem: every refined row's cut must be no worse than
// its instance's passes=0 (one-pass) baseline.
func (g *gate) checkRefineInvariant(rows []bench.RefinePerf) {
	base := make(map[string]int64, len(rows))
	for _, r := range rows {
		if r.Passes == 0 {
			base[r.Instance] = r.EdgeCut
		}
	}
	for _, r := range rows {
		if r.Passes == 0 {
			continue
		}
		cut0, ok := base[r.Instance]
		if !ok {
			g.failures = append(g.failures, fmt.Sprintf("%s: refine rows without a passes=0 baseline", r.Instance))
			continue
		}
		if r.EdgeCut > cut0 {
			g.failures = append(g.failures, fmt.Sprintf("%s p=%d: refined cut %d worse than one-pass cut %d",
				r.Instance, r.Passes, r.EdgeCut, cut0))
		}
	}
}

// rel returns (new-old)/old, tolerating a zero baseline.
func rel(newV, oldV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

func load(path string) (*bench.PerfSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s bench.PerfSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
