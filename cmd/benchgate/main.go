// Command benchgate is the CI perf-regression gate: it compares a
// freshly measured omsbench -json snapshot against the committed
// BENCH_oms.json baseline and fails (exit 1) when quality or throughput
// regressed beyond tolerance.
//
//	benchgate -old BENCH_oms.json -new BENCH_new.json
//
// Gates, per matched row (instance × algorithm, and instance × threads
// for the batch-ingest scenario):
//
//   - edge cut worse than -cut-tol (default 5%) fails;
//   - nodes/s lower than -speed-tol (default 20%) fails, but only for
//     rows whose baseline runtime is at least -min-runtime (default
//     1ms) — sub-millisecond rows are timing noise on shared runners
//     and are reported informationally instead;
//   - a row present in the baseline but missing from the fresh
//     snapshot fails (silent coverage loss reads as a pass otherwise).
//
// The full side-by-side table is always printed, so the job log shows
// the trajectory even when the gate passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"oms/internal/bench"
)

func main() {
	var (
		oldPath        = flag.String("old", "BENCH_oms.json", "committed baseline snapshot")
		newPath        = flag.String("new", "", "freshly measured snapshot")
		cutTol         = flag.Float64("cut-tol", 0.05, "allowed relative edge-cut worsening")
		speedTol       = flag.Float64("speed-tol", 0.20, "allowed relative nodes/s drop")
		minRuntime     = flag.Duration("min-runtime", time.Millisecond, "baseline runtime below which throughput is informational only")
		adaptiveCutTol = flag.Float64("adaptive-cut-tol", 0.10, "allowed adaptive-over-declared edge-cut overshoot (within one snapshot)")
	)
	flag.Parse()
	if *newPath == "" {
		fatal(fmt.Errorf("-new is required"))
	}
	oldSnap, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	if oldSnap.Scale != newSnap.Scale || oldSnap.K != newSnap.K {
		fatal(fmt.Errorf("snapshots disagree on the shared config: old scale=%g k=%d, new scale=%g k=%d",
			oldSnap.Scale, oldSnap.K, newSnap.Scale, newSnap.K))
	}

	g := &gate{cutTol: *cutTol, speedTol: *speedTol, minRuntime: minRuntime.Seconds()}
	fmt.Printf("benchgate: %s vs %s (scale %g, k %d; cut tol %.0f%%, speed tol %.0f%%)\n\n",
		*oldPath, *newPath, newSnap.Scale, newSnap.K, *cutTol*100, *speedTol*100)

	fmt.Printf("%-16s %-10s %12s %12s %7s %12s %12s %7s  %s\n",
		"instance", "algorithm", "cut(old)", "cut(new)", "Δcut", "nps(old)", "nps(new)", "Δnps", "status")
	newRows := make(map[string]bench.PerfResult, len(newSnap.Results))
	for _, r := range newSnap.Results {
		newRows[r.Instance+"/"+r.Algorithm] = r
	}
	for _, o := range oldSnap.Results {
		n, ok := newRows[o.Instance+"/"+o.Algorithm]
		if !ok {
			g.missing(o.Instance + "/" + o.Algorithm)
			continue
		}
		g.compare(o.Instance, o.Algorithm, o.EdgeCut, n.EdgeCut, o.NodesPerSec, n.NodesPerSec, o.RuntimeSec)
	}

	if len(oldSnap.BatchResults) > 0 {
		fmt.Printf("\n%-16s %-10s %12s %12s %7s %12s %12s %7s  %s\n",
			"instance", "threads", "cut(old)", "cut(new)", "Δcut", "nps(old)", "nps(new)", "Δnps", "status")
		newBatch := make(map[string]bench.BatchPerf, len(newSnap.BatchResults))
		for _, r := range newSnap.BatchResults {
			newBatch[fmt.Sprintf("%s/t%d", r.Instance, r.Threads)] = r
		}
		for _, o := range oldSnap.BatchResults {
			key := fmt.Sprintf("%s/t%d", o.Instance, o.Threads)
			n, ok := newBatch[key]
			if !ok {
				g.missing(key)
				continue
			}
			g.compare(o.Instance, fmt.Sprintf("t=%d", o.Threads), o.EdgeCut, n.EdgeCut, o.NodesPerSec, n.NodesPerSec, o.RuntimeSec)
		}
	}

	if len(oldSnap.RefineResults) > 0 || len(newSnap.RefineResults) > 0 {
		fmt.Printf("\n%-16s %-10s %12s %12s %7s %12s %12s %7s  %s\n",
			"instance", "passes", "cut(old)", "cut(new)", "Δcut", "nps(old)", "nps(new)", "Δnps", "status")
		newRefine := make(map[string]bench.RefinePerf, len(newSnap.RefineResults))
		for _, r := range newSnap.RefineResults {
			newRefine[fmt.Sprintf("%s/p%d", r.Instance, r.Passes)] = r
		}
		for _, o := range oldSnap.RefineResults {
			key := fmt.Sprintf("%s/p%d", o.Instance, o.Passes)
			n, ok := newRefine[key]
			if !ok {
				g.missing(key)
				continue
			}
			// Refinement rows gate on quality only: a pass is an O(m)
			// replay whose runtime is dominated by instance size, and
			// the sweep's cut trajectory is the committed promise.
			g.compare(o.Instance, fmt.Sprintf("p=%d", o.Passes), o.EdgeCut, n.EdgeCut, 0, 0, 0)
		}
		g.checkRefineInvariant(newSnap.RefineResults)
	}

	if len(oldSnap.AdaptiveResults) > 0 || len(newSnap.AdaptiveResults) > 0 {
		fmt.Printf("\n%-16s %12s %12s %7s %10s %11s  %s\n",
			"instance", "cut(decl)", "cut(adpt)", "ratio", "imb(adpt)", "balance_ok", "status")
		newAdaptive := make(map[string]bench.AdaptivePerf, len(newSnap.AdaptiveResults))
		for _, r := range newSnap.AdaptiveResults {
			newAdaptive[r.Instance] = r
		}
		for _, o := range oldSnap.AdaptiveResults {
			n, ok := newAdaptive[o.Instance]
			if !ok {
				g.missing(o.Instance + "/adaptive")
				continue
			}
			// Across snapshots the adaptive cut gates like every other
			// quality row.
			if float64(n.AdaptiveCut) > float64(o.AdaptiveCut)*(1+g.cutTol)+16 {
				g.failures = append(g.failures, fmt.Sprintf("%s adaptive: edge cut %d -> %d (tol %.0f%%)",
					o.Instance, o.AdaptiveCut, n.AdaptiveCut, g.cutTol*100))
			}
		}
		// Within the fresh snapshot the acceptance envelope holds
		// unconditionally: adaptive within adaptive-cut-tol of the
		// declared twin, and balanced within twice the epsilon slack.
		for _, r := range newSnap.AdaptiveResults {
			status := "ok"
			if float64(r.AdaptiveCut) > float64(r.DeclaredCut)*(1+*adaptiveCutTol)+16 {
				status = "FAIL cut"
				g.failures = append(g.failures, fmt.Sprintf("%s adaptive: cut %d beyond %.0f%% of declared %d",
					r.Instance, r.AdaptiveCut, *adaptiveCutTol*100, r.DeclaredCut))
			}
			if !r.BalanceOK {
				if status == "ok" {
					status = "FAIL balance"
				} else {
					status += "+balance"
				}
				g.failures = append(g.failures, fmt.Sprintf("%s adaptive: imbalance %.4f outside the 2x-epsilon envelope",
					r.Instance, r.AdaptiveImb))
			}
			fmt.Printf("%-16s %12d %12d %6.2fx %10.4f %11v  %s\n",
				r.Instance, r.DeclaredCut, r.AdaptiveCut, r.CutRatio, r.AdaptiveImb, r.BalanceOK, status)
		}
	}

	if len(g.failures) > 0 {
		fmt.Printf("\nbenchgate: FAIL — %d regression(s):\n", len(g.failures))
		for _, f := range g.failures {
			fmt.Println("  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: ok")
}

// gate accumulates row comparisons and their verdicts.
type gate struct {
	cutTol     float64
	speedTol   float64
	minRuntime float64
	failures   []string
}

func (g *gate) missing(key string) {
	g.failures = append(g.failures, fmt.Sprintf("%s: present in baseline, missing from fresh snapshot", key))
}

func (g *gate) compare(instance, variant string, oldCut, newCut int64, oldNPS, newNPS, oldSecs float64) {
	dCut := rel(float64(newCut), float64(oldCut))
	dNPS := rel(newNPS, oldNPS)
	status := "ok"
	// Small absolute slack keeps near-zero cuts from tripping on
	// single-edge jitter.
	if float64(newCut) > float64(oldCut)*(1+g.cutTol)+16 {
		status = "FAIL cut"
		g.failures = append(g.failures, fmt.Sprintf("%s %s: edge cut %d -> %d (%+.1f%%, tol %.0f%%)",
			instance, variant, oldCut, newCut, dCut*100, g.cutTol*100))
	}
	if oldSecs >= g.minRuntime {
		if newNPS < oldNPS*(1-g.speedTol) {
			if status == "ok" {
				status = "FAIL nps"
			} else {
				status += "+nps"
			}
			g.failures = append(g.failures, fmt.Sprintf("%s %s: nodes/s %.0f -> %.0f (%+.1f%%, tol %.0f%%)",
				instance, variant, oldNPS, newNPS, dNPS*100, g.speedTol*100))
		}
	} else if status == "ok" {
		status = "ok (nps info)"
	}
	fmt.Printf("%-16s %-10s %12d %12d %6.1f%% %12.0f %12.0f %6.1f%%  %s\n",
		instance, variant, oldCut, newCut, dCut*100, oldNPS, newNPS, dNPS*100, status)
}

// checkRefineInvariant enforces the within-snapshot promise of the
// refinement subsystem: every refined row's cut must be no worse than
// its instance's passes=0 (one-pass) baseline.
func (g *gate) checkRefineInvariant(rows []bench.RefinePerf) {
	base := make(map[string]int64, len(rows))
	for _, r := range rows {
		if r.Passes == 0 {
			base[r.Instance] = r.EdgeCut
		}
	}
	for _, r := range rows {
		if r.Passes == 0 {
			continue
		}
		cut0, ok := base[r.Instance]
		if !ok {
			g.failures = append(g.failures, fmt.Sprintf("%s: refine rows without a passes=0 baseline", r.Instance))
			continue
		}
		if r.EdgeCut > cut0 {
			g.failures = append(g.failures, fmt.Sprintf("%s p=%d: refined cut %d worse than one-pass cut %d",
				r.Instance, r.Passes, r.EdgeCut, cut0))
		}
	}
}

// rel returns (new-old)/old, tolerating a zero baseline.
func rel(newV, oldV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

func load(path string) (*bench.PerfSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s bench.PerfSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
