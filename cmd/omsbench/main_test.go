package main

import (
	"testing"

	"oms/internal/bench"
)

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"Figure 2a: mapping improvement over Hashing (%) vs k": "figure-2a-mapping-improvement-over-hashing-vs-k",
		"Table 2: RT/SU": "table-2-rt-su",
		"---x---":        "x",
	} {
		if got := sanitize(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInstanceTable(t *testing.T) {
	ins, err := bench.ByName("Dubcova1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := bench.Config{Scale: 0.05, Instances: []bench.Instance{ins}}
	tb := instanceTable(cfg)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	row := tb.Rows[0]
	if row.Cells["n(paper)"] != 16129 {
		t.Fatalf("paper n wrong: %v", row.Cells["n(paper)"])
	}
	if row.Cells["n(gen)"] < 800 {
		t.Fatalf("generated n wrong: %v", row.Cells["n(gen)"])
	}
}

func TestCfgScaleDefault(t *testing.T) {
	if cfgScale(bench.Config{}) != 0.05 {
		t.Fatal("default scale wrong")
	}
	if cfgScale(bench.Config{Scale: 0.5}) != 0.5 {
		t.Fatal("explicit scale ignored")
	}
}
