// Command omsbench regenerates the tables and figures of the paper's
// evaluation on synthetic Table 1 stand-ins.
//
// Experiments:
//
//	table1   print the instance registry with generated sizes
//	fig2     the state-of-the-art sweep: figures 2a-2f
//	table2   the scalability thread sweep (Table 2)
//	fig3     per-graph scalability (Figures 3a-3f)
//	tuning   the four parameter-tuning ablations of §4
//	memory   the memory-requirements paragraph of §4.1
//	order    stream-order sensitivity ablation (extension)
//	all      everything above
//
// Examples:
//
//	omsbench -exp fig2 -scale 0.05 -reps 3
//	omsbench -exp table2 -scale 0.02 -threads 1,2,4,8
//	omsbench -exp all -csv results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"oms/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "fig2", "experiment: table1 | fig2 | table2 | fig3 | tuning | memory | order | all")
		scale   = flag.Float64("scale", 0.05, "instance scale (1.0 = paper sizes)")
		reps    = flag.Int("reps", 3, "repetitions per measurement (paper: 10)")
		rsFlag  = flag.String("rs", "16,32,64,128", "hierarchy sweep: r values for S=4:16:r (k=64r)")
		thFlag  = flag.String("threads", "", "thread sweep for table2/fig3 (default 1,2,4,... up to GOMAXPROCS)")
		insFlag = flag.String("instances", "", "comma-separated instance subset (default all of Table 1)")
		k       = flag.Int("k", 8192, "block count for table2/fig3/memory")
		intmap  = flag.Bool("intmap", false, "include the sequential offline mapper (IntMap role) in fig2")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonOut = flag.String("json", "", "write a machine-readable perf snapshot (edge cut, nodes/s, peak RSS) to this file and exit")
		bthFlag = flag.String("batch-threads", "", "session-thread sweep of the -json batch-ingest scenario (default 1,2,4,8)")
		bsize   = flag.Int("batch-size", 0, "nodes per PushBatch in the -json batch-ingest scenario (default 1024)")
		rpFlag  = flag.String("refine-passes", "", "cumulative-pass sweep of the -json refinement scenario (default 1,2,3)")
		seed    = flag.Uint64("seed", 1, "base seed")
		quiet   = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	cfg := bench.Config{
		Scale:         *scale,
		Reps:          *reps,
		Seed:          *seed,
		IncludeIntMap: *intmap,
	}
	if *rsFlag != "" {
		for _, s := range strings.Split(*rsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad -rs entry %q", s))
			}
			cfg.Rs = append(cfg.Rs, int32(v))
		}
	}
	if *thFlag != "" {
		for _, s := range strings.Split(*thFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad -threads entry %q", s))
			}
			cfg.ThreadSweep = append(cfg.ThreadSweep, v)
		}
	}
	if *insFlag != "" {
		names := strings.Split(*insFlag, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		ins, err := bench.Subset(names)
		if err != nil {
			fatal(err)
		}
		cfg.Instances = ins
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}

	if *bthFlag != "" {
		for _, s := range strings.Split(*bthFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad -batch-threads entry %q", s))
			}
			cfg.BatchThreads = append(cfg.BatchThreads, v)
		}
	}
	cfg.BatchSize = *bsize
	if *rpFlag != "" {
		for _, s := range strings.Split(*rpFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad -refine-passes entry %q", s))
			}
			cfg.RefinePassSweep = append(cfg.RefinePassSweep, v)
		}
	}

	// -json is the perf-trajectory mode: one fixed suite, machine-
	// readable output (BENCH_oms.json), nothing else.
	if *jsonOut != "" {
		snap, err := bench.RunPerfSnapshot(cfg, int32(*k), progressWriter(progress))
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		return
	}

	var tables []*bench.Table
	run := func(name string) {
		switch name {
		case "table1":
			tables = append(tables, instanceTable(cfg))
		case "fig2":
			s, err := bench.RunStateOfTheArt(cfg, progressWriter(progress))
			if err != nil {
				fatal(err)
			}
			tables = append(tables, s.Fig2a(), s.Fig2b(), s.Fig2c(), s.Fig2d(), s.Fig2e(), s.Fig2f())
		case "table2", "fig3":
			scfg := cfg
			if scfg.Instances == nil {
				scfg.Instances = bench.ScalabilitySet()
			}
			res, err := bench.RunScalability(scfg, int32(*k), progressWriter(progress))
			if err != nil {
				fatal(err)
			}
			if name == "table2" {
				tables = append(tables, res.Table2())
			} else {
				for _, gname := range res.Fig3Graphs() {
					su, rt := res.Fig3(gname)
					tables = append(tables, su, rt)
				}
			}
		case "tuning":
			ts, err := bench.RunTuning(cfg, progressWriter(progress))
			if err != nil {
				fatal(err)
			}
			tables = append(tables, ts...)
		case "memory":
			t, err := bench.RunMemory(cfg, progressWriter(progress))
			if err != nil {
				fatal(err)
			}
			tables = append(tables, t)
		case "order":
			t, err := bench.RunStreamOrder(cfg, progressWriter(progress))
			if err != nil {
				fatal(err)
			}
			tables = append(tables, t)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig2", "table2", "fig3", "tuning", "memory", "order"} {
			run(name)
		}
	} else {
		run(*exp)
	}

	for _, t := range tables {
		t.Format(os.Stdout)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		for _, t := range tables {
			name := sanitize(t.Title) + ".csv"
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				fatal(err)
			}
			t.CSV(f)
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func instanceTable(cfg bench.Config) *bench.Table {
	t := &bench.Table{
		Title:   fmt.Sprintf("Table 1: benchmark instances (scale=%g)", cfgScale(cfg)),
		KeyName: "Graph",
		Columns: []string{"n(paper)", "m(paper)", "n(gen)", "m(gen)"},
	}
	instances := cfg.Instances
	if instances == nil {
		instances = bench.Table1
	}
	for _, ins := range instances {
		g := ins.BuildCached(cfgScale(cfg))
		t.AddRow(fmt.Sprintf("%s [%s]", ins.Name, ins.Family), map[string]float64{
			"n(paper)": float64(ins.N),
			"m(paper)": float64(ins.M),
			"n(gen)":   float64(g.NumNodes()),
			"m(gen)":   float64(g.NumEdges()),
		})
	}
	return t
}

func cfgScale(cfg bench.Config) float64 {
	if cfg.Scale == 0 {
		return 0.05
	}
	return cfg.Scale
}

func progressWriter(f *os.File) *os.File {
	if f == nil {
		return nil
	}
	return f
}

func sanitize(s string) string {
	s = strings.ToLower(s)
	keep := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}
	out := strings.Map(keep, s)
	for strings.Contains(out, "--") {
		out = strings.ReplaceAll(out, "--", "-")
	}
	return strings.Trim(out, "-")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "omsbench:", err)
	os.Exit(1)
}
