package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oms/internal/bench"
	"oms/internal/service"
)

// newOmsd runs the real service stack in-process and returns its URL.
func newOmsd(t *testing.T) string {
	t.Helper()
	mgr := service.NewManager(service.Config{JanitorPeriod: time.Hour, RefineWorkers: 1})
	mgr.SetReady()
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(service.NewServer(mgr))
	t.Cleanup(srv.Close)
	return srv.URL
}

// stalledOmsd proxies the real daemon but sleeps before every request —
// the induced-stall fixture the SLO gate must catch.
func stalledOmsd(t *testing.T, stall time.Duration) string {
	t.Helper()
	backend := newOmsd(t)
	u, err := url.Parse(backend)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(stall)
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

func runLoad(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(context.Background(), args, &out, &errw, nil)
	t.Logf("stdout:\n%s\nstderr:\n%s", out.String(), errw.String())
	return code, out.String(), errw.String()
}

func loadArgs(url, dir string, extra ...string) []string {
	return append([]string{
		"-url", url, "-out", dir, "-wait-ready", "5s",
		"-duration", "1500ms", "-rps", "40",
	}, extra...)
}

func TestRunPasses(t *testing.T) {
	url := newOmsd(t)
	dir := t.TempDir()
	code, _, _ := runLoad(t, loadArgs(url, dir, "-thresholds", "push_p99_ms<60000,create_p99_ms<60000")...)
	if code != 0 {
		t.Fatalf("exit %d, want 0 against a healthy daemon", code)
	}
	for _, f := range []string{"summary.json", "samples.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
}

// TestRunFailsOnInducedStall: a 30ms stall in front of every request
// cannot satisfy push_p99_ms<5 — the gate must exit 1, not paper over
// the slowdown.
func TestRunFailsOnInducedStall(t *testing.T) {
	url := stalledOmsd(t, 30*time.Millisecond)
	code, out, _ := runLoad(t, loadArgs(url, t.TempDir(), "-thresholds", "push_p99_ms<5")...)
	if code != 1 {
		t.Fatalf("exit %d, want 1 with an induced stall against push_p99_ms<5", code)
	}
	if !strings.Contains(out, "VIOLATED") {
		t.Fatalf("report does not name the violated threshold:\n%s", out)
	}
}

func TestWaitOnly(t *testing.T) {
	url := newOmsd(t)
	if code, _, _ := runLoad(t, "-url", url, "-wait-ready", "5s", "-wait-only"); code != 0 {
		t.Fatalf("exit %d, want 0 from -wait-only against a ready daemon", code)
	}
	// Nothing listening: readiness exhausts and exits 2.
	code, _, _ := runLoad(t, "-url", "http://127.0.0.1:1", "-wait-ready", "200ms", "-wait-only")
	if code != 2 {
		t.Fatalf("exit %d, want 2 when the daemon never comes up", code)
	}
}

func TestBadFlags(t *testing.T) {
	if code, _, _ := runLoad(t, "-profile", "/nonexistent.env"); code != 2 {
		t.Fatal("missing profile file must exit 2")
	}
	if code, _, _ := runLoad(t, "-thresholds", "push_p99_ms"); code != 2 {
		t.Fatal("malformed -thresholds must exit 2")
	}
}

// TestBenchMerge: -bench-json must graft load_results onto an existing
// snapshot without disturbing its other sections.
func TestBenchMerge(t *testing.T) {
	url := newOmsd(t)
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "BENCH.json")
	seed := []byte(`{"schema":"oms-bench/v1","go_version":"gox","results":[{"instance":"keep_me","n":1,"algorithm":"oms","runtime_sec":0.5}]}`)
	if err := os.WriteFile(benchPath, seed, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, _ := runLoad(t, loadArgs(url, dir, "-bench-json", benchPath)...)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap bench.PerfSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Load == nil || len(snap.Load.Classes) == 0 {
		t.Fatalf("snapshot has no load_results: %s", raw)
	}
	if snap.Load.Profile != "default" || snap.Load.AchievedRPS <= 0 {
		t.Fatalf("load_results header %+v", snap.Load)
	}
	if len(snap.Results) != 1 || snap.Results[0].Instance != "keep_me" {
		t.Fatalf("merge clobbered existing rows: %s", raw)
	}
	for _, c := range snap.Load.Classes {
		if c.Class == "push" && c.Requests > 0 && c.P99Ms > 0 {
			return
		}
	}
	t.Fatalf("no populated push class in load_results: %+v", snap.Load.Classes)
}
