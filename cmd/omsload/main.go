// Command omsload drives a live omsd with an open-loop production
// workload and turns the run into a latency-SLO verdict: a fixed
// arrival schedule (intended-start timestamps per request, so
// coordinated omission cannot hide server stalls) over a weighted mix
// of push streams, /batch group pushes, adaptive sessions, refine
// kicks, and status/result reads, with bounded session churn and
// deterministic seeded adjacency. Workloads are declared in committed
// profile files (profiles/smoke_1k.env, profiles/heavy_10k.env).
//
//	omsload -url http://localhost:7600 -profile profiles/smoke_1k.env -out load/
//	omsload -url http://localhost:7600 -profile profiles/heavy_10k.env \
//	        -thresholds 'push_p99_ms<5,batch_p99_ms<10'
//	omsload -url http://localhost:7600 -wait-ready 15s -wait-only   # readiness gate only
//	omsload -targets http://n1:7600,http://n2:7600,http://n3:7600 \
//	        -profile profiles/smoke_1k.env -out load/               # cluster mode
//
// Outputs land in -out: samples.csv (one row per sample interval) and
// summary.json (per-class p50/p95/p99 and the threshold verdict), the
// same shapes omsstat writes for the server-side view — run omsstat
// against /metrics concurrently and the two cross-check. A run
// interrupted by SIGINT/SIGTERM still flushes both files, marked
// "partial": true.
//
// Exit codes: 0 all thresholds hold, 1 at least one violated, 2 usage,
// setup, or output error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oms/internal/bench"
	"oms/internal/load"
	"oms/internal/slo"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer, client *http.Client) int {
	fs := flag.NewFlagSet("omsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url        = fs.String("url", "http://localhost:7600", "omsd base URL")
		targets    = fs.String("targets", "", "comma-separated base URLs of a cluster's members (overrides -url; requests route to session owners and retry through failover)")
		profile    = fs.String("profile", "", "workload profile file (profiles/*.env); empty runs the defaults")
		out        = fs.String("out", ".", "directory for samples.csv and summary.json")
		duration   = fs.Duration("duration", 0, "override the profile's DURATION")
		rps        = fs.Float64("rps", 0, "override the profile's base RPS")
		thresholds = fs.String("thresholds", "", "override the profile's THRESHOLDS (push_p99_ms<5,... grammar)")
		waitReady  = fs.Duration("wait-ready", 15*time.Second, "poll /v1/readyz with backoff up to this long before loading (0 = skip)")
		waitOnly   = fs.Bool("wait-only", false, "only wait for readiness, then exit (the CI boot gate)")
		benchJSON  = fs.String("bench-json", "", "merge this run as the load_results section of the given bench snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	p := load.DefaultProfile()
	if *profile != "" {
		var err error
		if p, err = load.ParseProfile(*profile); err != nil {
			fmt.Fprintln(stderr, "omsload:", err)
			return 2
		}
	}
	if *duration > 0 {
		p.Duration = *duration
	}
	if *rps > 0 {
		p.RPS = *rps
	}
	if *thresholds != "" {
		ths, err := slo.ParseThresholds(*thresholds)
		if err != nil {
			fmt.Fprintln(stderr, "omsload:", err)
			return 2
		}
		p.Thresholds = ths
	}

	var targetList []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targetList = append(targetList, t)
		}
	}
	if len(targetList) > 0 {
		*url = targetList[0]
	}

	if *waitReady > 0 {
		ready := targetList
		if len(ready) == 0 {
			ready = []string{*url}
		}
		for _, u := range ready {
			if err := load.WaitReady(ctx, client, u, *waitReady); err != nil {
				fmt.Fprintln(stderr, "omsload:", err)
				return 2
			}
		}
	}
	if *waitOnly {
		fmt.Fprintln(stdout, "omsload: ready")
		return 0
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "omsload:", err)
		return 2
	}
	sum, code := load.Run(ctx, load.Config{
		Profile: p,
		URL:     *url,
		Targets: targetList,
		OutDir:  *out,
		Client:  client,
		Stdout:  stdout,
		Stderr:  stderr,
	})
	if sum != nil && *benchJSON != "" {
		if err := mergeBench(*benchJSON, sum); err != nil {
			fmt.Fprintln(stderr, "omsload:", err)
			return 2
		}
		fmt.Fprintf(stdout, "omsload: load_results written to %s\n", *benchJSON)
	}
	return code
}

// mergeBench writes the run as the snapshot's load_results section,
// preserving every other section of an existing snapshot file (the
// committed BENCH_oms.json carries the offline suites too).
func mergeBench(path string, sum *load.Summary) error {
	snap := &bench.PerfSnapshot{Schema: "oms-bench/v1"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, snap); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	sec := &bench.LoadSection{
		Profile:     sum.Profile,
		URL:         sum.URL,
		DurationSec: sum.DurationSec,
		AchievedRPS: sum.AchievedRPS,
		Partial:     sum.Partial,
	}
	for _, c := range load.Classes {
		cs, ok := sum.Classes[string(c)]
		if !ok {
			continue
		}
		sec.Classes = append(sec.Classes, bench.LoadPerf{
			Class:    string(c),
			Requests: cs.Requests,
			Errors:   cs.Errors,
			Rejected: cs.Rejected,
			P50Ms:    cs.P50Ms,
			P95Ms:    cs.P95Ms,
			P99Ms:    cs.P99Ms,
		})
	}
	snap.Load = sec
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
