package main

import (
	"testing"
)

func TestBuildInstance(t *testing.T) {
	g, err := build("Dubcova1", 0.05, "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 { // 16129*0.05 = 806 -> floor 1000
		t.Fatalf("n=%d", g.NumNodes())
	}
}

func TestBuildAllFamilies(t *testing.T) {
	for _, fam := range []string{"rgg", "delaunay", "grid2d", "grid3d", "rmat-social", "rmat-citation", "ba", "ws", "road", "er"} {
		g, err := build("", 1, fam, 2000, 8000, 3)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.NumNodes() < 1000 {
			t.Fatalf("%s: too few nodes %d", fam, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
	}
}

func TestBuildGridRoundsUp(t *testing.T) {
	g, err := build("", 1, "grid2d", 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 32x32 >= 1000
	if g.NumNodes() != 32*32 {
		t.Fatalf("grid2d n=%d, want 1024", g.NumNodes())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", 1, "", 100, 0, 1); err == nil {
		t.Fatal("no instance/family accepted")
	}
	if _, err := build("", 1, "bogus", 100, 0, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := build("no-such-instance", 1, "", 100, 0, 1); err == nil {
		t.Fatal("unknown instance accepted")
	}
}

func TestBuildDefaultM(t *testing.T) {
	g, err := build("", 1, "er", 1000, 0, 1) // m defaults to 8n
	if err != nil {
		t.Fatal(err)
	}
	if m := g.NumEdges(); m < 6000 || m > 9000 {
		t.Fatalf("er default m=%d, want ~8000", m)
	}
}
