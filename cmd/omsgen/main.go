// Command omsgen generates synthetic benchmark graphs — METIS text by
// default, or the v2 binary wire-stream format (-format wire): the
// frames omsd's binary ingest route accepts, ready to pipe onto the
// network or feed to oms.NewWireSource. Sources are either a named
// Table 1 stand-in at a chosen scale, or a raw generator family with
// explicit sizes.
//
// Usage:
//
//	omsgen -instance web-Google -scale 0.1 -o web-google.metis
//	omsgen -family rgg -n 1000000 -o rgg20.metis
//	omsgen -family rmat-social -n 100000 -m 1000000 -seed 7 -o soc.metis
//	omsgen -family delaunay -n 100000 -format wire -o del17.omsw
//	omsgen -convert snap-edges.txt -o graph.metis   # SNAP edge list -> METIS
//	omsgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"oms"
	"oms/internal/bench"
	"oms/internal/graph"
)

func main() {
	var (
		instance = flag.String("instance", "", "Table 1 instance name (see -list)")
		scale    = flag.Float64("scale", 1.0, "size scale for -instance (1.0 = paper size)")
		family   = flag.String("family", "", "generator family: rgg | delaunay | grid2d | grid3d | rmat-social | rmat-citation | ba | ws | road | er")
		n        = flag.Int64("n", 100000, "node count for -family")
		m        = flag.Int64("m", 0, "edge count target for families that take one (rmat-*, er); 0 = 8n")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
		format   = flag.String("format", "metis", "output format: metis | wire (v2 binary stream frames)")
		convert  = flag.String("convert", "", "convert a SNAP-style edge-list file to METIS instead of generating")
		list     = flag.Bool("list", false, "list Table 1 instances and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Table 1 instances (name: n m family):")
		for _, ins := range bench.Table1 {
			fmt.Printf("  %-22s %9d %12d  %s\n", ins.Name, ins.N, ins.M, ins.Family)
		}
		return
	}

	var g *graph.Graph
	var err error
	if *convert != "" {
		g, _, err = oms.ReadEdgeListFile(*convert)
	} else {
		g, err = build(*instance, *scale, *family, int32(*n), *m, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "omsgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "omsgen: generated n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	writeFile := oms.WriteMetisFile
	switch *format {
	case "metis":
	case "wire":
		writeFile = oms.WriteWireFile
	default:
		fmt.Fprintf(os.Stderr, "omsgen: unknown -format %q (metis | wire)\n", *format)
		os.Exit(1)
	}
	if *out == "" {
		if err := writeStdout(g, writeFile); err != nil {
			fmt.Fprintln(os.Stderr, "omsgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := writeFile(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "omsgen:", err)
		os.Exit(1)
	}
}

func build(instance string, scale float64, family string, n int32, m int64, seed uint64) (*graph.Graph, error) {
	if instance != "" {
		ins, err := bench.ByName(instance)
		if err != nil {
			return nil, err
		}
		return ins.Build(scale), nil
	}
	if m == 0 {
		m = 8 * int64(n)
	}
	switch family {
	case "rgg":
		return oms.GenRGG2D(n, seed), nil
	case "delaunay":
		return oms.GenDelaunay(n, seed), nil
	case "grid2d":
		side := int32(1)
		for side*side < n {
			side++
		}
		return oms.GenGrid2D(side, side, false), nil
	case "grid3d":
		side := int32(1)
		for side*side*side < n {
			side++
		}
		return oms.GenGrid3D(side, side, side), nil
	case "rmat-social":
		return oms.GenRMATSocial(n, m, seed), nil
	case "rmat-citation":
		return oms.GenRMATCitation(n, m, seed), nil
	case "ba":
		deg := int32(m / int64(n))
		if deg < 1 {
			deg = 1
		}
		return oms.GenBarabasiAlbert(n, deg, seed), nil
	case "ws":
		kHalf := int32(m / int64(n))
		if kHalf < 1 {
			kHalf = 1
		}
		return oms.GenWattsStrogatz(n, kHalf, 0.1, seed), nil
	case "road":
		return oms.GenRoadLike(n, 2*float64(m)/float64(n), seed), nil
	case "er":
		return oms.GenErdosRenyi(n, m, seed), nil
	case "":
		return nil, fmt.Errorf("one of -instance or -family is required (try -list)")
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func writeStdout(g *graph.Graph, writeFile func(string, *graph.Graph) error) error {
	tmp, err := os.CreateTemp("", "omsgen-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	tmp.Close()
	if err := writeFile(tmp.Name(), g); err != nil {
		return err
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}
