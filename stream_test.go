package oms_test

import (
	"errors"
	"testing"

	"oms"
)

func TestOrderedSourcePartitionStaysBalanced(t *testing.T) {
	g := oms.GenRMATSocial(8192, 40000, 3)
	k := int32(64)
	for _, order := range []oms.StreamOrder{
		oms.OrderNatural, oms.OrderRandom, oms.OrderDegreeDesc, oms.OrderDegreeAsc, oms.OrderBFS,
	} {
		src := oms.NewOrderedSource(g, order, 7)
		res, err := oms.Partition(src, k, oms.Options{})
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if err := res.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
			t.Fatalf("%v: %v", order, err)
		}
	}
}

func TestOrderedSourceBFSHelpsOnMesh(t *testing.T) {
	// On a spatially ordered mesh, a random stream order destroys the
	// locality one-pass partitioners depend on: the natural (spatial)
	// order must cut clearly fewer edges.
	g := oms.GenDelaunay(20000, 5)
	k := int32(64)
	natural, err := oms.Partition(oms.NewOrderedSource(g, oms.OrderNatural, 1), k, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	random, err := oms.Partition(oms.NewOrderedSource(g, oms.OrderRandom, 1), k, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if natural.EdgeCut(g) >= random.EdgeCut(g) {
		t.Fatalf("natural order cut %d not below random order cut %d",
			natural.EdgeCut(g), random.EdgeCut(g))
	}
}

func TestRestreamOnePassImproves(t *testing.T) {
	g := oms.GenRMATCitation(8192, 40000, 11)
	k := int32(32)
	src := oms.NewMemorySource(g)
	base, err := oms.PartitionOnePass(src, k, oms.ScorerFennel, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := oms.RestreamOnePass(src, k, oms.ScorerFennel, 2, oms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.EdgeCut(g) > base.EdgeCut(g) {
		t.Fatalf("restreaming worsened cut: %d -> %d", base.EdgeCut(g), re.EdgeCut(g))
	}
	if err := re.CheckBalanced(g, oms.DefaultEpsilon); err != nil {
		t.Fatal(err)
	}
}

func TestRestreamOnePassRejectsHashing(t *testing.T) {
	g := oms.GenErdosRenyi(1000, 3000, 1)
	_, err := oms.RestreamOnePass(oms.NewMemorySource(g), 4, oms.ScorerHashing, 1, oms.Options{})
	if err == nil {
		t.Fatal("hashing restream accepted")
	}
	var unsupported *oms.UnsupportedScorerError
	if !errors.As(err, &unsupported) {
		t.Fatalf("wrong error type: %v", err)
	}
}
