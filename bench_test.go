// Benchmarks regenerating the workload of every table and figure in the
// paper's evaluation (§4). Each Benchmark* family corresponds to one
// artifact; the omsbench command runs the same experiments end to end
// and prints the full tables (see DESIGN.md §4 for the index).
//
// The benchmark sizes are scaled down so `go test -bench=.` completes in
// minutes; the shapes (who wins, by what factor) match the full-scale
// runs recorded in EXPERIMENTS.md.
package oms_test

import (
	"fmt"
	"runtime"
	"testing"

	"oms"
	"oms/internal/bench"
	"oms/internal/metrics"
)

const benchScale = 0.02

func instance(b *testing.B, name string) *oms.Graph {
	b.Helper()
	ins, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return ins.BuildCached(benchScale)
}

func benchTopo(r int32) *oms.Topology {
	return oms.MustTopology(fmt.Sprintf("4:16:%d", r), "1:10:100")
}

// BenchmarkTable1Instances measures the synthetic stand-in generators:
// one representative instance per family of Table 1.
func BenchmarkTable1Instances(b *testing.B) {
	for _, name := range []string{"Dubcova1", "hcircuit", "coAuthorsDBLP", "web-Google", "italy-osm", "Ljournal-2008", "rgg21"} {
		ins, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := ins.Build(benchScale)
				if g.NumNodes() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkFig2aMapping is the workload behind Figure 2a: process
// mapping quality (J, reported as a custom metric) and time per
// algorithm at S = 4:16:16 (k = 1024).
func BenchmarkFig2aMapping(b *testing.B) {
	g := instance(b, "web-Google")
	top := benchTopo(16)
	k := top.Spec.K()
	run := func(b *testing.B, f func(seed uint64) *oms.Result) {
		var j float64
		for i := 0; i < b.N; i++ {
			res := f(uint64(i))
			j = res.MappingCost(g, top)
		}
		b.ReportMetric(j, "J")
	}
	b.Run("OMS", func(b *testing.B) {
		run(b, func(seed uint64) *oms.Result {
			res, err := oms.MapGraph(g, top, oms.Options{Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			return res
		})
	})
	b.Run("Fennel", func(b *testing.B) {
		run(b, func(seed uint64) *oms.Result {
			res, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerFennel, oms.Options{Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			return res
		})
	})
	b.Run("Hashing", func(b *testing.B) {
		run(b, func(seed uint64) *oms.Result {
			res, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerHashing, oms.Options{Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			return res
		})
	})
	b.Run("Multilevel", func(b *testing.B) {
		run(b, func(seed uint64) *oms.Result {
			res, err := oms.PartitionMultilevel(g, k, oms.MultilevelOptions{Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			return res
		})
	})
	b.Run("OfflineMap", func(b *testing.B) {
		run(b, func(seed uint64) *oms.Result {
			res, err := oms.MapOffline(g, top, oms.OfflineMapOptions{Seed: seed, SwapRounds: 2})
			if err != nil {
				b.Fatal(err)
			}
			return res
		})
	})
}

// BenchmarkFig2bEdgeCut is the workload behind Figure 2b: plain k-way
// partitioning quality (edge-cut as a custom metric) at k = 1024.
func BenchmarkFig2bEdgeCut(b *testing.B) {
	g := instance(b, "web-Google")
	const k = 1024
	cases := []struct {
		name string
		f    func(seed uint64) (*oms.Result, error)
	}{
		{"nh-OMS", func(seed uint64) (*oms.Result, error) {
			return oms.PartitionGraph(g, k, oms.Options{Seed: seed})
		}},
		{"Fennel", func(seed uint64) (*oms.Result, error) {
			return oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerFennel, oms.Options{Seed: seed})
		}},
		{"LDG", func(seed uint64) (*oms.Result, error) {
			return oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerLDG, oms.Options{Seed: seed})
		}},
		{"Hashing", func(seed uint64) (*oms.Result, error) {
			return oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerHashing, oms.Options{Seed: seed})
		}},
		{"Multilevel", func(seed uint64) (*oms.Result, error) {
			return oms.PartitionMultilevel(g, k, oms.MultilevelOptions{Seed: seed})
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				res, err := c.f(uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut(g)
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkFig2cRuntime is the workload behind Figure 2c: pure streaming
// throughput per algorithm at a large k (the paper's regime where the
// O(m + nk) flat scan separates from the O((m+nb) log k) tree walk).
// The ns/op column is the figure.
func BenchmarkFig2cRuntime(b *testing.B) {
	g := instance(b, "soc-LiveJournal1")
	const k = 4096
	top := benchTopo(64)
	b.Run("Hashing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerHashing, oms.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nh-OMS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := oms.PartitionGraph(g, k, oms.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OMS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := oms.MapGraph(g, top, oms.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fennel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerFennel, oms.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Multilevel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := oms.PartitionMultilevel(g, k, oms.MultilevelOptions{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig2dProfiles covers Figures 2d-2f: the performance-profile
// computation over a sweep's per-instance values (the analysis step that
// turns measurements into the plotted curves).
func BenchmarkFig2dProfiles(b *testing.B) {
	// Synthetic sweep values: 4 algorithms x 512 (instance, k) points.
	values := make(map[string][]float64, 4)
	for a, name := range []string{"Hashing", "OMS", "Fennel", "KaMinPar*"} {
		vs := make([]float64, 512)
		for i := range vs {
			vs[i] = float64((i*31+a*17)%1000 + 1)
		}
		values[name] = vs
	}
	taus := metrics.DefaultTaus(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := metrics.PerformanceProfile(values, taus)
		if len(p.Fraction) != 4 {
			b.Fatal("wrong profile")
		}
	}
}

// BenchmarkTable2Scalability is the thread sweep of Table 2: one
// sub-benchmark per thread count for the parallel streaming algorithms
// at k = 8192 on a large instance. ns/op across sub-benchmarks gives the
// speedup column.
func BenchmarkTable2Scalability(b *testing.B) {
	g := instance(b, "soc-orkut-dir")
	k := int32(8192)
	if int64(k) > int64(g.NumNodes())/4 {
		k = g.NumNodes() / 4
	}
	top := benchTopo(k / 64)
	threads := []int{1, 2, 4, 8, 16, 32}
	for _, th := range threads {
		if th > runtime.GOMAXPROCS(0) {
			break
		}
		b.Run(fmt.Sprintf("OMS/threads-%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := oms.MapGraph(g, top, oms.Options{Threads: th, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("nh-OMS/threads-%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := oms.PartitionGraph(g, k, oms.Options{Threads: th, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Fennel/threads-%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerFennel, oms.Options{Threads: th, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Hashing/threads-%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerHashing, oms.Options{Threads: th, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3PerGraphScaling is Figure 3: per-graph scaling of OMS on
// the three highlighted instances at 1 thread vs all cores.
func BenchmarkFig3PerGraphScaling(b *testing.B) {
	maxTh := runtime.GOMAXPROCS(0)
	for _, name := range []string{"soc-orkut-dir", "HV15R", "soc-LiveJournal1"} {
		g := instance(b, name)
		k := int32(8192)
		if int64(k) > int64(g.NumNodes())/4 {
			k = g.NumNodes() / 4
		}
		r := k / 64
		if r < 2 {
			r = 2
		}
		top := benchTopo(r)
		for _, th := range []int{1, maxTh} {
			b.Run(fmt.Sprintf("%s/threads-%d", name, th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := oms.MapGraph(g, top, oms.Options{Threads: th, Seed: uint64(i)}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTuningScorer is the scorer-coupling ablation (§4 tuning:
// Fennel vs LDG inside the multi-section).
func BenchmarkTuningScorer(b *testing.B) {
	g := instance(b, "coAuthorsDBLP")
	top := benchTopo(16)
	for _, c := range []struct {
		name   string
		scorer oms.Scorer
	}{{"Fennel", oms.ScorerFennel}, {"LDG", oms.ScorerLDG}} {
		b.Run(c.name, func(b *testing.B) {
			var j float64
			for i := 0; i < b.N; i++ {
				res, err := oms.MapGraph(g, top, oms.Options{Scorer: c.scorer, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				j = res.MappingCost(g, top)
			}
			b.ReportMetric(j, "J")
		})
	}
}

// BenchmarkTuningAlpha is the adapted-vs-vanilla alpha ablation.
func BenchmarkTuningAlpha(b *testing.B) {
	g := instance(b, "coAuthorsDBLP")
	top := benchTopo(16)
	for _, c := range []struct {
		name    string
		vanilla bool
	}{{"adapted", false}, {"vanilla", true}} {
		b.Run(c.name, func(b *testing.B) {
			var j float64
			for i := 0; i < b.N; i++ {
				res, err := oms.MapGraph(g, top, oms.Options{VanillaAlpha: c.vanilla, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				j = res.MappingCost(g, top)
			}
			b.ReportMetric(j, "J")
		})
	}
}

// BenchmarkTuningBase is the artificial-hierarchy base ablation (b = 2
// vs the tuned 4 vs 8).
func BenchmarkTuningBase(b *testing.B) {
	g := instance(b, "web-Google")
	const k = 1024
	for _, base := range []int32{2, 4, 8} {
		b.Run(fmt.Sprintf("base-%d", base), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				res, err := oms.PartitionGraph(g, k, oms.Options{Base: base, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut(g)
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkTuningHybrid is the hashed-bottom-layers sweep (§3.2 hybrid
// mapping, Theorem 3).
func BenchmarkTuningHybrid(b *testing.B) {
	g := instance(b, "web-Google")
	top := benchTopo(16)
	for h := 0; h <= 3; h++ {
		b.Run(fmt.Sprintf("h-%d", h), func(b *testing.B) {
			var j float64
			for i := 0; i < b.N; i++ {
				res, err := oms.MapGraph(g, top, oms.Options{HashLayers: h, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				j = res.MappingCost(g, top)
			}
			b.ReportMetric(j, "J")
		})
	}
}

// BenchmarkMemoryFootprint is the §4.1 memory comparison: allocations of
// one full streaming pass (B/op and allocs/op with -benchmem are the
// artifact) against the in-memory comparator.
func BenchmarkMemoryFootprint(b *testing.B) {
	g := instance(b, "soc-LiveJournal1")
	const k = 4096
	top := benchTopo(64)
	b.Run("OMS", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := oms.MapGraph(g, top, oms.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fennel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerFennel, oms.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Hashing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := oms.PartitionOnePass(oms.NewMemorySource(g), k, oms.ScorerHashing, oms.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Multilevel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := oms.PartitionMultilevel(g, k, oms.MultilevelOptions{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
