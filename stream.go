package oms

import (
	"oms/internal/onepass"
	"oms/internal/stream"
)

// StreamOrder selects the node arrival order of an ordered source. The
// paper streams instances in their natural order; the other orders
// support stream-order sensitivity studies (cf. Awadelkarim & Ugander's
// prioritized streaming).
type StreamOrder = stream.Order

// Stream orders for NewOrderedSource.
const (
	// OrderNatural streams nodes in the graph's given order.
	OrderNatural = stream.OrderNatural
	// OrderRandom streams a seeded uniform permutation.
	OrderRandom = stream.OrderRandom
	// OrderDegreeDesc streams high-degree nodes first.
	OrderDegreeDesc = stream.OrderDegreeDesc
	// OrderDegreeAsc streams low-degree nodes first.
	OrderDegreeAsc = stream.OrderDegreeAsc
	// OrderBFS streams a breadth-first traversal (maximal locality).
	OrderBFS = stream.OrderBFS
)

// OrderedSource streams an in-memory graph in a chosen node order.
type OrderedSource = stream.Reordered

// NewOrderedSource wraps g with a non-natural arrival order; seed
// matters only for OrderRandom.
func NewOrderedSource(g *Graph, order StreamOrder, seed uint64) *OrderedSource {
	return stream.NewReordered(g, order, seed)
}

// RestreamOnePass runs a flat one-pass partitioner (Fennel or LDG) and
// then improves it with extra sequential restreaming passes — the
// ReFennel/ReLDG scheme of Nishimura and Ugander: each pass retracts a
// node and re-places it with full knowledge of the previous pass.
// ScorerHashing does not benefit and is rejected.
func RestreamOnePass(src Source, k int32, scorer Scorer, passes int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	st, err := src.Stats()
	if err != nil {
		return nil, err
	}
	cfg := onepass.Config{K: k, Epsilon: opt.Epsilon, Gamma: opt.Gamma, Seed: opt.Seed}
	threads := opt.Threads
	if threads < 1 {
		threads = 1
	}
	var alg onepass.Algorithm
	switch scorer {
	case ScorerFennel:
		alg, err = onepass.NewFennel(cfg, st, threads)
	case ScorerLDG:
		alg, err = onepass.NewLDG(cfg, st, threads)
	default:
		return nil, &UnsupportedScorerError{Scorer: scorer}
	}
	if err != nil {
		return nil, err
	}
	parts, err := onepass.Restream(src, alg, passes, threads)
	if err != nil {
		return nil, err
	}
	return &Result{Parts: parts, K: k, Lmax: onepass.Lmax(st.TotalNodeWeight, k, opt.Epsilon)}, nil
}

// UnsupportedScorerError reports a scorer that cannot drive the
// requested operation.
type UnsupportedScorerError struct {
	Scorer Scorer
}

func (e *UnsupportedScorerError) Error() string {
	return "oms: scorer " + e.Scorer.String() + " does not support this operation"
}
