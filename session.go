package oms

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"oms/internal/core"
	"oms/internal/hierarchy"
	"oms/internal/onepass"
	"oms/internal/stream"
	"oms/internal/util"
)

// Sentinel errors returned (possibly wrapped) by Session operations, so
// callers — the omsd HTTP layer in particular — can map failure classes
// to distinct responses instead of parsing message strings.
var (
	// ErrSessionFinished reports a Push or second Finish on a sealed
	// session.
	ErrSessionFinished = errors.New("oms: session already finished")
	// ErrNodeOutOfRange reports a node or neighbor id outside the
	// declared [0, N) range.
	ErrNodeOutOfRange = errors.New("oms: node outside declared range")
	// ErrEdgeBudget reports a Push that would exceed the declared edge
	// budget of 2m adjacency entries.
	ErrEdgeBudget = errors.New("oms: declared edge budget exceeded")
)

// StreamStats declares the global stream quantities a one-pass
// partitioner must know before the first node arrives: they size the
// balance constraint Lmax and Fennel's alpha. Pull sources derive them
// from the graph or file header; push sessions declare them up front.
type StreamStats = stream.Stats

// SessionConfig opens a push session. Exactly the information a client
// of the omsd service declares when creating a session.
type SessionConfig struct {
	// Stats are the declared global stream quantities. N and
	// TotalNodeWeight must be exact for the balance guarantee;
	// TotalEdgeWeight only shapes Fennel's alpha. For unit-weight
	// streams set TotalNodeWeight = N.
	Stats StreamStats
	// Topology selects process mapping onto its PEs; nil selects plain
	// partitioning into K blocks over an artificial Options.Base-section
	// hierarchy.
	Topology *Topology
	// K is the partitioning target when Topology is nil.
	K int32
	// Options configures the run exactly as for Partition/Map.
	Options Options
	// Record keeps a copy of every pushed node in a replayable source,
	// enabling Restream and post-hoc quality metrics at O(n + m) extra
	// memory. Off by default: the pure streaming regime is O(n + k).
	Record bool
	// Adaptive opens an open-ended session: the stream's n, m, and
	// total weights need not be declared. Stats become optional hints
	// (lower bounds on the final totals; zeros are ignored), an online
	// estimator projects the totals from what actually arrives, and
	// Fennel's alpha plus every tree-block capacity re-normalize as the
	// projections ratchet. Finish reconciles against the true observed
	// totals and reports the projection error (AdaptiveInfo).
	//
	// Balance caveat: capacities derived from projections overshoot the
	// observed totals by at most AdaptiveHeadroom, so the imbalance
	// guarantee relative to the final totals loosens from Epsilon to
	// (1+Epsilon)(1+AdaptiveHeadroom)-1 ≈ Epsilon + AdaptiveHeadroom
	// (plus integer rounding) — about twice the declared-stats slack at
	// the defaults. Oversized hints widen it further (capacities never
	// shrink).
	Adaptive bool
	// AdaptiveMaxN caps the node ids an adaptive session accepts, since
	// no declared n bounds them; 0 selects DefaultAdaptiveMaxN. Memory
	// grows with the largest id actually pushed, not with the cap.
	AdaptiveMaxN int32
	// AdaptiveHeadroom is the estimator's projection overshoot. 0 picks
	// an automatic default by retention: RetainedAdaptiveHeadroom (2.0)
	// for Record sessions — whose Finish repairs balance with a
	// reconcile pass, so streaming-time optimism is free quality — and
	// the tight onepass default (the paper's epsilon) otherwise, where
	// the projection alone carries the imbalance bound.
	AdaptiveHeadroom float64
}

// DefaultAdaptiveMaxN bounds node ids in adaptive sessions that do not
// set their own cap (2^26, matching the omsd per-session node cap).
const DefaultAdaptiveMaxN = 1 << 26

// RetainedAdaptiveHeadroom is the automatic projection overshoot for
// adaptive sessions whose stream is retained (Record sessions here; the
// omsd service counts its write-ahead log as retention): the estimator
// assumes the stream is roughly one third done at any instant, which
// keeps early capacities roomy enough for arriving clusters to stay
// together. The resulting streaming-time imbalance is repaired by the
// finish-time reconcile pass, which re-places every node under exact
// capacities.
const RetainedAdaptiveHeadroom = 2.0

// Node is one element of a PushBatch: id, weight (0 means 1), the
// adjacency list, and optional parallel edge weights. The slices are not
// retained past the call (Record sessions copy them).
type Node struct {
	U   int32
	W   int32
	Adj []int32
	EW  []int32
}

// Session is the push-based counterpart of Partition and Map: instead of
// handing the algorithm a pull Source, the caller pushes each node with
// its adjacency list as it arrives and receives the node's permanent
// block immediately — the paper's "on the fly" assignment surfaced as an
// incremental API. A sequence of Push calls in natural node order
// computes bit-identical assignments to Partition/Map over the same
// stream and options. PushBatch hands a whole buffered slice of arrivals
// to the engine at once and, with Options.Threads > 1, assigns them with
// the paper's shared-memory parallel scheme (§3.4).
//
// A Session is not safe for concurrent use; serialize access (the omsd
// service multiplexes many sessions over a worker pool with exactly this
// discipline). The concurrency inside PushBatch is the session's own.
type Session struct {
	o   *core.OMS
	buf *stream.Buffer
	n   int32
	// edgeBudget is 2*declared m: every edge may arrive once per
	// endpoint in the paper's stream model. Pushes beyond it are
	// rejected, bounding adjacency storage by the declaration.
	edgeBudget int64
	edgesSeen  int64
	// assigned is atomic so monitoring readers (the omsd session list)
	// may poll it while a worker is pushing; all other state still
	// requires the documented serialization.
	assigned atomic.Int32
	finished bool
	// adaptive marks an open-ended session: n is the id ceiling rather
	// than a declaration, the edge budget is unbounded, and estErrN /
	// estErrW hold the Finish-time reconciliation report (atomic bits:
	// monitoring readers poll AdaptiveInfo while the owning worker may
	// be finishing).
	adaptive bool
	estErrN  atomic.Uint64
	estErrW  atomic.Uint64
}

// NewSession opens a push session. Omitted stats default like the wire
// API: TotalNodeWeight to N (unit weights) and TotalEdgeWeight to M.
func NewSession(cfg SessionConfig) (*Session, error) {
	opt := cfg.Options.withDefaults()
	if cfg.Stats.N < 0 || cfg.Stats.M < 0 || cfg.Stats.TotalNodeWeight < 0 || cfg.Stats.TotalEdgeWeight < 0 {
		return nil, fmt.Errorf("oms: negative declared stats %+v", cfg.Stats)
	}
	ccfg := opt.coreConfig()
	if cfg.Adaptive {
		// Stats are hints: zeros simply leave the estimator to its
		// observations, and a hinted N does not default the weights (a
		// hint is a floor, not a unit-weight declaration).
		if cfg.AdaptiveMaxN < 0 {
			return nil, fmt.Errorf("oms: negative adaptive node cap %d", cfg.AdaptiveMaxN)
		}
		if cfg.AdaptiveHeadroom < 0 {
			return nil, fmt.Errorf("oms: negative adaptive headroom %v", cfg.AdaptiveHeadroom)
		}
		if cfg.AdaptiveHeadroom == 0 && cfg.Record {
			cfg.AdaptiveHeadroom = RetainedAdaptiveHeadroom
		}
		ccfg.Adaptive = true
		ccfg.AdaptiveHeadroom = cfg.AdaptiveHeadroom
	} else {
		if cfg.Stats.N == 0 {
			return nil, fmt.Errorf("oms: session declares 0 nodes (open-ended streams set Adaptive)")
		}
		if cfg.Stats.TotalNodeWeight == 0 {
			cfg.Stats.TotalNodeWeight = int64(cfg.Stats.N)
		}
		if cfg.Stats.TotalEdgeWeight == 0 {
			cfg.Stats.TotalEdgeWeight = cfg.Stats.M
		}
	}
	var o *core.OMS
	var err error
	if cfg.Topology != nil {
		o, err = core.New(hierarchy.FromSpec(cfg.Topology.Spec), cfg.Stats, ccfg)
	} else {
		o, err = core.NewGP(cfg.K, opt.Base, cfg.Stats, ccfg)
	}
	if err != nil {
		return nil, err
	}
	s := &Session{o: o, n: cfg.Stats.N, edgeBudget: 2 * cfg.Stats.M}
	if cfg.Adaptive {
		s.adaptive = true
		s.n = cfg.AdaptiveMaxN
		if s.n <= 0 {
			s.n = DefaultAdaptiveMaxN
		}
		// No declared m bounds an open-ended stream; adjacency is not
		// retained, so the budget is simply off.
		s.edgeBudget = math.MaxInt64
	}
	if cfg.Record {
		s.buf = stream.NewBuffer(cfg.Stats)
	}
	return s, nil
}

// K returns the number of final blocks / PEs.
func (s *Session) K() int32 { return s.o.K() }

// Lmax returns the leaf balance threshold the session enforces.
func (s *Session) Lmax() int64 { return s.o.LmaxValue() }

// Assigned returns how many nodes have been pushed so far.
func (s *Session) Assigned() int32 { return s.assigned.Load() }

// Push streams one node: the online recursive multi-section walks u from
// the root of the multi-section tree to a leaf and returns that leaf,
// u's permanent block. Neighbors not yet pushed simply contribute no
// gain, exactly as in the pull-based one-pass model. The adjacency
// slices are not retained (Record copies them).
//
// Push is idempotent: re-pushing an assigned node returns its existing
// permanent block without re-charging loads or budgets, so clients may
// safely retry a chunk whose response they lost.
func (s *Session) Push(u int32, vwgt int32, adj []int32, ewgt []int32) (int32, error) {
	if s.finished {
		return -1, fmt.Errorf("%w: push after Finish", ErrSessionFinished)
	}
	if u < 0 || u >= s.n {
		return -1, fmt.Errorf("%w: node %d not in [0,%d)", ErrNodeOutOfRange, u, s.n)
	}
	if b := s.o.AssignmentOf(u); b >= 0 {
		return b, nil
	}
	if err := s.validateNode(u, vwgt, adj, ewgt); err != nil {
		return -1, err
	}
	if s.edgesSeen+int64(len(adj)) > s.edgeBudget {
		return -1, fmt.Errorf("%w: node %d overruns 2m = %d", ErrEdgeBudget, u, s.edgeBudget)
	}
	s.edgesSeen += int64(len(adj))
	// Open-ended sessions observe before assigning: the estimator
	// accumulates the node, the assignment vector grows to cover it and
	// its neighbors, and — on a ratchet — alpha and the capacities
	// re-normalize before this node is scored.
	s.o.ObserveAdaptive(u, vwgt, adj, ewgt)
	b := s.o.AssignNode(u, vwgt, adj, ewgt)
	s.assigned.Add(1)
	if s.buf != nil {
		s.buf.Append(u, vwgt, adj, ewgt)
	}
	return b, nil
}

// validateNode applies the per-node admission checks shared by Push,
// PushBatch, and PushAssigned (everything but the idempotency and
// edge-budget checks, whose ordering differs per entry point).
func (s *Session) validateNode(u int32, vwgt int32, adj []int32, ewgt []int32) error {
	if vwgt <= 0 {
		return fmt.Errorf("oms: node %d has non-positive weight %d", u, vwgt)
	}
	if ewgt != nil && len(ewgt) != len(adj) {
		return fmt.Errorf("oms: node %d has %d edge weights for %d edges", u, len(ewgt), len(adj))
	}
	for i, nb := range adj {
		if nb < 0 || nb >= s.n {
			return fmt.Errorf("%w: node %d has neighbor %d not in [0,%d)", ErrNodeOutOfRange, u, nb, s.n)
		}
		if ewgt != nil && ewgt[i] <= 0 {
			return fmt.Errorf("oms: node %d has non-positive edge weight %d", u, ewgt[i])
		}
	}
	return nil
}

// Workers returns how many parallel assignment workers the session's
// engine was configured for (Options.Threads, at least 1) — the fan-out
// PushBatch uses.
func (s *Session) Workers() int { return s.o.Workers() }

// PushBatch streams a buffered slice of arrivals at once: the batched
// counterpart of Push, and the entry the omsd batch endpoint drives. A
// zero Node.W means weight 1, like the wire API. The returned blocks
// align with nodes.
//
// With Options.Threads > 1 the batch is fanned out over the engine's
// per-worker assignment state and assigned concurrently with the
// paper's §3.4 scheme: block loads are reserved with capacity-checked
// CAS (so the balance constraint Lmax still holds exactly for
// unit-weight streams) and neighbor assignments are read racily, so a
// neighbor assigned by another worker mid-batch may or may not
// contribute gain. Quality stays within the paper's parallel-streaming
// envelope but assignments are not deterministic across runs; with
// Threads <= 1 PushBatch is bit-identical to the same sequence of Push
// calls.
//
// Unlike a chunk of Push calls, a batch is admitted atomically: every
// node is validated (and the edge budget checked) before any node is
// assigned, so a rejected batch changes no session state. Nodes already
// assigned — and re-occurrences within the batch — are idempotent: they
// contribute their existing (or first) assignment and are neither
// re-charged nor re-recorded.
func (s *Session) PushBatch(nodes []Node) ([]int32, error) {
	if s.finished {
		return nil, fmt.Errorf("%w: push after Finish", ErrSessionFinished)
	}
	// Admission pass: validate everything and find the fresh nodes
	// before touching any engine state.
	fresh := make([]int, 0, len(nodes))
	var freshEdges int64
	seen := make(map[int32]struct{})
	for i := range nodes {
		nd := &nodes[i]
		if nd.W == 0 {
			nd.W = 1
		}
		if nd.U < 0 || nd.U >= s.n {
			return nil, fmt.Errorf("%w: node %d not in [0,%d)", ErrNodeOutOfRange, nd.U, s.n)
		}
		if err := s.validateNode(nd.U, nd.W, nd.Adj, nd.EW); err != nil {
			return nil, err
		}
		if s.o.AssignmentOf(nd.U) >= 0 {
			continue
		}
		if _, dup := seen[nd.U]; dup {
			continue
		}
		seen[nd.U] = struct{}{}
		fresh = append(fresh, i)
		freshEdges += int64(len(nd.Adj))
	}
	if s.edgesSeen+freshEdges > s.edgeBudget {
		return nil, fmt.Errorf("%w: batch of %d fresh nodes overruns 2m = %d", ErrEdgeBudget, len(fresh), s.edgeBudget)
	}
	s.edgesSeen += freshEdges

	// Adaptive observation: ratchets rewrite the capacities and alphas
	// the assignment reads, so with parallel workers every observation
	// lands here, during single-threaded admission, before the fan-out
	// (observation order is batch order — the same order a WAL replay
	// of this batch observes, so recovered estimator state matches).
	// With one worker the batch instead interleaves observe/assign per
	// node below, preserving the documented bit-parity with the same
	// sequence of Push calls.
	interleave := s.adaptive && s.o.Workers() == 1
	if s.adaptive && !interleave {
		for _, i := range fresh {
			nd := &nodes[i]
			s.o.ObserveAdaptive(nd.U, nd.W, nd.Adj, nd.EW)
		}
	}

	// Assignment pass: contiguous chunks of the fresh list per worker,
	// each on its own engine scratch.
	if interleave {
		for _, i := range fresh {
			nd := &nodes[i]
			s.o.ObserveAdaptive(nd.U, nd.W, nd.Adj, nd.EW)
			s.o.AssignNodeOn(0, nd.U, nd.W, nd.Adj, nd.EW)
		}
	} else {
		util.ParallelFor(len(fresh), s.o.Workers(), func(worker, lo, hi int) {
			for j := lo; j < hi; j++ {
				nd := &nodes[fresh[j]]
				s.o.AssignNodeOn(worker, nd.U, nd.W, nd.Adj, nd.EW)
			}
		})
	}
	s.assigned.Add(int32(len(fresh)))

	// Record pass: fresh nodes in batch order (arrival order), exactly
	// what a sequence of Push calls would have recorded.
	if s.buf != nil {
		for _, i := range fresh {
			nd := &nodes[i]
			s.buf.Append(nd.U, nd.W, nd.Adj, nd.EW)
		}
	}
	blocks := make([]int32, len(nodes))
	for i := range nodes {
		blocks[i] = s.o.AssignmentOf(nodes[i].U)
	}
	return blocks, nil
}

// PushAssigned replays one node whose block was already decided and
// acknowledged by an earlier run of this stream: it charges the node's
// weight down the recorded root-to-leaf path without re-scoring. This
// is the durable-log replay entry — parallel batch assignment is not
// deterministic, so recovery replays the logged decisions themselves
// (per-node frames without a recorded block go through Push instead).
// Like Push it is idempotent on already-assigned nodes.
func (s *Session) PushAssigned(u int32, vwgt int32, adj []int32, ewgt []int32, block int32) (int32, error) {
	if s.finished {
		return -1, fmt.Errorf("%w: push after Finish", ErrSessionFinished)
	}
	if u < 0 || u >= s.n {
		return -1, fmt.Errorf("%w: node %d not in [0,%d)", ErrNodeOutOfRange, u, s.n)
	}
	if b := s.o.AssignmentOf(u); b >= 0 {
		return b, nil
	}
	if block < 0 || block >= s.o.K() {
		return -1, fmt.Errorf("oms: node %d replays block %d outside [0,%d)", u, block, s.o.K())
	}
	if err := s.validateNode(u, vwgt, adj, ewgt); err != nil {
		return -1, err
	}
	if s.edgesSeen+int64(len(adj)) > s.edgeBudget {
		return -1, fmt.Errorf("%w: node %d overruns 2m = %d", ErrEdgeBudget, u, s.edgeBudget)
	}
	s.edgesSeen += int64(len(adj))
	s.o.ObserveAdaptive(u, vwgt, adj, ewgt)
	s.o.ForceAssign(u, vwgt, block)
	s.assigned.Add(1)
	if s.buf != nil {
		s.buf.Append(u, vwgt, adj, ewgt)
	}
	return block, nil
}

// Finish seals the session and returns the result. Nodes never pushed
// keep assignment -1; pushing after Finish fails. Parts is a copy: a
// later Restream does not mutate it (unlike Partition/Map, the engine
// outlives the returned Result here).
func (s *Session) Finish() (*Result, error) {
	if s.finished {
		return nil, fmt.Errorf("%w: Finish called twice", ErrSessionFinished)
	}
	s.finished = true
	// The threshold the streaming run actually obeyed — for adaptive
	// sessions the final ratcheted value, which exceeds the reconciled
	// one by up to the headroom.
	lmax := s.o.LmaxValue()
	// Open-ended sessions reconcile at the seal: the projection is
	// replaced by the exact observed totals (its error is kept for
	// AdaptiveInfo) and capacities re-normalize one final time, so
	// later restream passes refine against exact capacities.
	errN, errW := s.o.Reconcile()
	s.estErrN.Store(math.Float64bits(errN))
	s.estErrW.Store(math.Float64bits(errW))
	// Retained adaptive sessions also reconcile the partition itself:
	// one sequential retract-and-reassign pass over the recorded stream
	// re-places every node under the now-exact capacities, repairing
	// the imbalance the optimistic streaming-time projection allowed
	// and recovering most of the cold-start cut. The omsd service runs
	// the same pass over its write-ahead log for adaptive sessions that
	// persist instead of record. Only then does the result report the
	// reconciled threshold — Result.Lmax is the bound the run enforced,
	// and without a reconcile pass the streaming bound is the honest
	// one.
	if s.adaptive && s.buf != nil {
		if _, err := s.o.RestreamPasses(s.buf, 1); err != nil {
			return nil, err
		}
		lmax = s.o.LmaxValue()
	}
	parts := append([]int32(nil), s.o.Assignments()[:s.o.Coverage()]...)
	return &Result{Parts: parts, K: s.o.K(), Lmax: lmax}, nil
}

// ReconcilePass runs one sequential retract-and-reassign pass over src
// — the same stream the session ingested, replayed from outside — with
// the session's reconciled exact capacities: the finish-time repair of
// an adaptive session whose stream is retained durably rather than in
// memory (the omsd write-ahead log). Deterministic for a fixed src
// order, so a recovered daemon reproduces the result byte-identically.
// It requires a finished adaptive session.
func (s *Session) ReconcilePass(src Source) (*Result, error) {
	if !s.adaptive {
		return nil, fmt.Errorf("oms: ReconcilePass on a declared-stats session")
	}
	if !s.finished {
		return nil, fmt.Errorf("oms: ReconcilePass before Finish")
	}
	parts, err := s.o.RestreamPasses(src, 1)
	if err != nil {
		return nil, err
	}
	parts = parts[:s.o.Coverage()]
	return &Result{Parts: append([]int32(nil), parts...), K: s.o.K(), Lmax: s.o.LmaxValue()}, nil
}

// Source returns the recorded replayable stream of a Record session
// (nil otherwise): the pushed nodes in arrival order, for restreaming or
// second-pass quality metrics.
func (s *Session) Source() Source {
	if s.buf == nil {
		return nil
	}
	return s.buf
}

// Restream improves a finished Record session's result with extra
// sequential passes over the recorded stream, as Restream does for pull
// sources. It requires Record and a prior Finish.
func (s *Session) Restream(passes int) (*Result, error) {
	if s.buf == nil {
		return nil, fmt.Errorf("oms: Restream requires a Record session")
	}
	if !s.finished {
		return nil, fmt.Errorf("oms: Restream before Finish")
	}
	if passes < 0 {
		return nil, fmt.Errorf("oms: negative restream passes %d", passes)
	}
	parts, err := s.o.RestreamPasses(s.buf, passes)
	if err != nil {
		return nil, err
	}
	parts = parts[:s.o.Coverage()]
	return &Result{Parts: append([]int32(nil), parts...), K: s.o.K(), Lmax: s.o.LmaxValue()}, nil
}

// RestreamFrom improves the session's current assignment with extra
// retract-and-reassign passes over an external recorded source — the
// same stream the session ingested, replayed from outside (the omsd
// refinement service replays a session's write-ahead log through here).
// Unlike Restream it requires neither Record nor a prior Finish: the
// canonical caller is a fresh engine rebuilt from the finished session's
// exported state, which is never itself finished. Passes run with the
// session's configured Options.Threads workers; one thread (the default)
// keeps them sequential and deterministic.
func (s *Session) RestreamFrom(src Source, passes int) (*Result, error) {
	if passes < 0 {
		return nil, fmt.Errorf("oms: negative restream passes %d", passes)
	}
	parts, err := s.o.RestreamPassesParallel(src, passes, s.o.Workers())
	if err != nil {
		return nil, err
	}
	parts = parts[:s.o.Coverage()]
	return &Result{Parts: append([]int32(nil), parts...), K: s.o.K(), Lmax: s.o.LmaxValue()}, nil
}

// SessionState is a point-in-time checkpoint of a session's mutable
// streaming state: the engine's per-tree-block loads and per-node
// assignments plus the session's edge-budget progress. It is exactly
// what a restarted process needs to continue the stream at the next
// node — O(n + k) in size, the paper's memory bound (Theorem 1). The
// construction inputs (SessionConfig) are not included; a restore
// target must be built from the same config.
type SessionState struct {
	// EdgesSeen is the consumed portion of the 2m edge budget.
	EdgesSeen int64
	// Loads are the per-tree-block loads, root first.
	Loads []int64
	// Parts are the per-node assignments; -1 for nodes not yet pushed.
	Parts []int32
	// Estimator is the online stats estimator of an adaptive session
	// (nil for declared sessions): restoring it makes the resumed
	// session ratchet exactly where the checkpointed one would have.
	Estimator *EstimatorState
}

// EstimatorState is the exported estimator state of an adaptive
// session: the observed running totals, the ratchet trigger, and the
// projection in force. An alias, like StreamStats, so checkpoint and
// WAL encoders cannot drift from the estimator's own fields.
type EstimatorState = onepass.EstimatorState

// Adaptive reports whether the session estimates its stream stats
// online.
func (s *Session) Adaptive() bool { return s.adaptive }

// AdaptiveInfo describes an adaptive session's estimation trajectory.
// The error fields are zero until Finish reconciles.
type AdaptiveInfo struct {
	// Observed are the exact totals seen so far.
	Observed StreamStats
	// Estimated is the projection in force (equal to Observed after
	// Finish reconciles).
	Estimated StreamStats
	// Revision counts projection changes so far.
	Revision int64
	// EstimateErrN / EstimateErrW are the relative projection errors
	// ((estimate-observed)/observed) for the node count and total node
	// weight at the moment Finish sealed the stream.
	EstimateErrN float64
	EstimateErrW float64
}

// AdaptiveInfo returns the estimation trajectory of an adaptive
// session; ok is false for declared sessions. Safe to call concurrently
// with a pushing worker (monitoring endpoints poll it).
func (s *Session) AdaptiveInfo() (info AdaptiveInfo, ok bool) {
	est := s.o.Estimator()
	if est == nil {
		return AdaptiveInfo{}, false
	}
	return AdaptiveInfo{
		Observed:     est.Observed(),
		Estimated:    est.Estimates(),
		Revision:     est.Revision(),
		EstimateErrN: math.Float64frombits(s.estErrN.Load()),
		EstimateErrW: math.Float64frombits(s.estErrW.Load()),
	}, true
}

// StatsRevision returns how many times an adaptive session's projection
// has changed (0 forever on declared sessions). Durable stores log a
// stats-revision frame whenever it advances.
func (s *Session) StatsRevision() int64 {
	if est := s.o.Estimator(); est != nil {
		return est.Revision()
	}
	return 0
}

// Coverage returns how many leading entries of the assignment vector
// are meaningful: the declared n, or — for adaptive sessions — one
// past the highest node or neighbor id observed so far. It is the
// session's live memory footprint in nodes; safe for concurrent
// monitoring reads only between pushes (the omsd service reads it on
// the owning worker).
func (s *Session) Coverage() int32 { return s.o.Coverage() }

// EstimatorSnapshot exports just the estimator state of an adaptive
// session (ok false on declared sessions) — the payload of a durable
// stats-revision record, much cheaper than a full ExportState.
func (s *Session) EstimatorSnapshot() (EstimatorState, bool) {
	if est, ok := s.o.ExportEstimator(); ok {
		return est, true
	}
	return EstimatorState{}, false
}

// ApplyEstimator overwrites an adaptive session's estimator state and
// re-derives the dependent thresholds — the replay entry for the
// durable log's stats-revision frames, which resynchronize recovery
// even if estimator internals drift between versions. Serialized with
// pushes like every session call.
func (s *Session) ApplyEstimator(st EstimatorState) error {
	return s.o.ImportEstimator(st)
}

// ReconcileStats replaces an adaptive session's projection with the
// exact observed totals and re-normalizes capacities, as Finish does
// (no-op on declared sessions). The offline refinement path uses it
// after rebuilding an engine by replay, where the whole stream has been
// observed but no Finish ran.
func (s *Session) ReconcileStats() { s.o.Reconcile() }

// ExportState checkpoints the session. The caller must serialize it
// against Push/Finish like every other session call; the returned state
// shares no memory with the session.
func (s *Session) ExportState() SessionState {
	loads, parts := s.o.ExportState()
	st := SessionState{EdgesSeen: s.edgesSeen, Loads: loads, Parts: parts}
	if est, ok := s.o.ExportEstimator(); ok {
		st.Estimator = &est
	}
	return st
}

// RestoreState loads a checkpoint into a freshly created session built
// from the same SessionConfig the checkpoint's session used. Because
// OMS is deterministic for a fixed stream order and seed, pushing the
// post-checkpoint suffix of the original stream afterwards yields
// assignments bit-identical to the uninterrupted run. Restoring into a
// session that has already accepted pushes, has finished, or records
// its stream (Record sessions replay their full log instead) is an
// error.
func (s *Session) RestoreState(st SessionState) error {
	if s.finished {
		return fmt.Errorf("%w: restore after Finish", ErrSessionFinished)
	}
	if s.assigned.Load() != 0 || s.edgesSeen != 0 {
		return fmt.Errorf("oms: restore into a session that already streamed %d nodes", s.assigned.Load())
	}
	if s.buf != nil {
		return fmt.Errorf("oms: restore into a Record session (replay the recorded stream instead)")
	}
	if st.EdgesSeen < 0 || st.EdgesSeen > s.edgeBudget {
		return fmt.Errorf("oms: restored edge count %d outside [0, 2m = %d]", st.EdgesSeen, s.edgeBudget)
	}
	if s.adaptive != (st.Estimator != nil) {
		return fmt.Errorf("oms: checkpoint adaptive=%v, session adaptive=%v", st.Estimator != nil, s.adaptive)
	}
	if err := s.o.ImportState(st.Loads, st.Parts); err != nil {
		return err
	}
	if st.Estimator != nil {
		if err := s.o.ImportEstimator(*st.Estimator); err != nil {
			return err
		}
	}
	s.edgesSeen = st.EdgesSeen
	var assigned int32
	for _, p := range st.Parts {
		if p >= 0 {
			assigned++
		}
	}
	s.assigned.Store(assigned)
	return nil
}
