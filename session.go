package oms

import (
	"fmt"
	"sync/atomic"

	"oms/internal/core"
	"oms/internal/hierarchy"
	"oms/internal/stream"
)

// StreamStats declares the global stream quantities a one-pass
// partitioner must know before the first node arrives: they size the
// balance constraint Lmax and Fennel's alpha. Pull sources derive them
// from the graph or file header; push sessions declare them up front.
type StreamStats = stream.Stats

// SessionConfig opens a push session. Exactly the information a client
// of the omsd service declares when creating a session.
type SessionConfig struct {
	// Stats are the declared global stream quantities. N and
	// TotalNodeWeight must be exact for the balance guarantee;
	// TotalEdgeWeight only shapes Fennel's alpha. For unit-weight
	// streams set TotalNodeWeight = N.
	Stats StreamStats
	// Topology selects process mapping onto its PEs; nil selects plain
	// partitioning into K blocks over an artificial Options.Base-section
	// hierarchy.
	Topology *Topology
	// K is the partitioning target when Topology is nil.
	K int32
	// Options configures the run exactly as for Partition/Map.
	Options Options
	// Record keeps a copy of every pushed node in a replayable source,
	// enabling Restream and post-hoc quality metrics at O(n + m) extra
	// memory. Off by default: the pure streaming regime is O(n + k).
	Record bool
}

// Session is the push-based counterpart of Partition and Map: instead of
// handing the algorithm a pull Source, the caller pushes each node with
// its adjacency list as it arrives and receives the node's permanent
// block immediately — the paper's "on the fly" assignment surfaced as an
// incremental API. A sequence of Push calls in natural node order
// computes bit-identical assignments to Partition/Map over the same
// stream and options.
//
// A Session is not safe for concurrent use; serialize access (the omsd
// service multiplexes many sessions over a worker pool with exactly this
// discipline).
type Session struct {
	o   *core.OMS
	buf *stream.Buffer
	n   int32
	// edgeBudget is 2*declared m: every edge may arrive once per
	// endpoint in the paper's stream model. Pushes beyond it are
	// rejected, bounding adjacency storage by the declaration.
	edgeBudget int64
	edgesSeen  int64
	// assigned is atomic so monitoring readers (the omsd session list)
	// may poll it while a worker is pushing; all other state still
	// requires the documented serialization.
	assigned atomic.Int32
	finished bool
}

// NewSession opens a push session. Omitted stats default like the wire
// API: TotalNodeWeight to N (unit weights) and TotalEdgeWeight to M.
func NewSession(cfg SessionConfig) (*Session, error) {
	opt := cfg.Options.withDefaults()
	if cfg.Stats.N <= 0 {
		return nil, fmt.Errorf("oms: session declares %d nodes", cfg.Stats.N)
	}
	if cfg.Stats.M < 0 || cfg.Stats.TotalNodeWeight < 0 || cfg.Stats.TotalEdgeWeight < 0 {
		return nil, fmt.Errorf("oms: negative declared stats %+v", cfg.Stats)
	}
	if cfg.Stats.TotalNodeWeight == 0 {
		cfg.Stats.TotalNodeWeight = int64(cfg.Stats.N)
	}
	if cfg.Stats.TotalEdgeWeight == 0 {
		cfg.Stats.TotalEdgeWeight = cfg.Stats.M
	}
	var o *core.OMS
	var err error
	if cfg.Topology != nil {
		o, err = core.New(hierarchy.FromSpec(cfg.Topology.Spec), cfg.Stats, opt.coreConfig())
	} else {
		o, err = core.NewGP(cfg.K, opt.Base, cfg.Stats, opt.coreConfig())
	}
	if err != nil {
		return nil, err
	}
	s := &Session{o: o, n: cfg.Stats.N, edgeBudget: 2 * cfg.Stats.M}
	if cfg.Record {
		s.buf = stream.NewBuffer(cfg.Stats)
	}
	return s, nil
}

// K returns the number of final blocks / PEs.
func (s *Session) K() int32 { return s.o.K() }

// Lmax returns the leaf balance threshold the session enforces.
func (s *Session) Lmax() int64 { return s.o.LmaxValue() }

// Assigned returns how many nodes have been pushed so far.
func (s *Session) Assigned() int32 { return s.assigned.Load() }

// Push streams one node: the online recursive multi-section walks u from
// the root of the multi-section tree to a leaf and returns that leaf,
// u's permanent block. Neighbors not yet pushed simply contribute no
// gain, exactly as in the pull-based one-pass model. The adjacency
// slices are not retained (Record copies them).
//
// Push is idempotent: re-pushing an assigned node returns its existing
// permanent block without re-charging loads or budgets, so clients may
// safely retry a chunk whose response they lost.
func (s *Session) Push(u int32, vwgt int32, adj []int32, ewgt []int32) (int32, error) {
	if s.finished {
		return -1, fmt.Errorf("oms: push after Finish")
	}
	if u < 0 || u >= s.n {
		return -1, fmt.Errorf("oms: node %d outside declared range [0,%d)", u, s.n)
	}
	if b := s.o.AssignmentOf(u); b >= 0 {
		return b, nil
	}
	if vwgt <= 0 {
		return -1, fmt.Errorf("oms: node %d has non-positive weight %d", u, vwgt)
	}
	if ewgt != nil && len(ewgt) != len(adj) {
		return -1, fmt.Errorf("oms: node %d has %d edge weights for %d edges", u, len(ewgt), len(adj))
	}
	if s.edgesSeen+int64(len(adj)) > s.edgeBudget {
		return -1, fmt.Errorf("oms: node %d overruns the declared edge budget (2m = %d)", u, s.edgeBudget)
	}
	for i, nb := range adj {
		if nb < 0 || nb >= s.n {
			return -1, fmt.Errorf("oms: node %d has neighbor %d outside declared range [0,%d)", u, nb, s.n)
		}
		if ewgt != nil && ewgt[i] <= 0 {
			return -1, fmt.Errorf("oms: node %d has non-positive edge weight %d", u, ewgt[i])
		}
	}
	s.edgesSeen += int64(len(adj))
	b := s.o.AssignNode(u, vwgt, adj, ewgt)
	s.assigned.Add(1)
	if s.buf != nil {
		s.buf.Append(u, vwgt, adj, ewgt)
	}
	return b, nil
}

// Finish seals the session and returns the result. Nodes never pushed
// keep assignment -1; pushing after Finish fails. Parts is a copy: a
// later Restream does not mutate it (unlike Partition/Map, the engine
// outlives the returned Result here).
func (s *Session) Finish() (*Result, error) {
	if s.finished {
		return nil, fmt.Errorf("oms: session finished twice")
	}
	s.finished = true
	parts := append([]int32(nil), s.o.Assignments()...)
	return &Result{Parts: parts, K: s.o.K(), Lmax: s.o.LmaxValue()}, nil
}

// Source returns the recorded replayable stream of a Record session
// (nil otherwise): the pushed nodes in arrival order, for restreaming or
// second-pass quality metrics.
func (s *Session) Source() Source {
	if s.buf == nil {
		return nil
	}
	return s.buf
}

// Restream improves a finished Record session's result with extra
// sequential passes over the recorded stream, as Restream does for pull
// sources. It requires Record and a prior Finish.
func (s *Session) Restream(passes int) (*Result, error) {
	if s.buf == nil {
		return nil, fmt.Errorf("oms: Restream requires a Record session")
	}
	if !s.finished {
		return nil, fmt.Errorf("oms: Restream before Finish")
	}
	if passes < 0 {
		return nil, fmt.Errorf("oms: negative restream passes %d", passes)
	}
	parts, err := s.o.RestreamPasses(s.buf, passes)
	if err != nil {
		return nil, err
	}
	return &Result{Parts: append([]int32(nil), parts...), K: s.o.K(), Lmax: s.o.LmaxValue()}, nil
}
